package names

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"secext/internal/acl"
	"secext/internal/decision"
	"secext/internal/lattice"
	"secext/internal/monitor"
	"secext/internal/monitor/dacguard"
	"secext/internal/monitor/macguard"
	"secext/internal/principal"
	"secext/internal/telemetry"
)

// ErrNotEmpty is returned when unbinding a node that still has children.
var ErrNotEmpty = fmt.Errorf("names: node not empty")

// Server is the central name server: the single facility that names
// every object in the system (§2.3). It is pure mechanism — resolution,
// binding, storage — and delegates every policy decision to an injected
// monitor.Pipeline: the server resolves a name, describes the node it
// found (ACL, class, multilevel flag), and lets the guard stack decide.
// It is safe for concurrent use.
//
// Concurrency design (RCU over the WHOLE policy): the server publishes
// an immutable Epoch — name tree, frozen lattice, frozen
// principal/group registry, guard stack — through one atomic pointer.
// Readers (Resolve, CheckAccess, List, GetACL, Walk) pin the current
// Epoch with a single atomic load and run the entire decision against
// it with zero locks; no mediation step ever consults mutable state.
// Writers serialize on a writer-only mutex, derive a successor epoch
// (cloning the tree spine for name mutations, swapping the frozen
// lattice/registry/stack for the typed transitions below), and publish
// it at version+1. The epoch version IS the decision-cache generation —
// one clock for "any policy shard changed" and "cached verdicts are
// dead".
//
// Epoch transitions are typed: name mutations come through the Bind/
// Unbind/Rename/Set* operations; the lattice and registry push their
// freshly frozen state through PublishLattice/PublishRegistry (wired
// via publish hooks at construction/attachment); guard installs push
// the new stack through PublishStack. There is no untyped "invalidate
// everything" entry point — every version bump names the shard that
// moved.
//
// Checked operations take the requesting subject (for the DAC decision)
// and the subject's current security class (for the MAC decision).
// Unchecked variants exist for bootstrap and for the reference monitor's
// own bookkeeping; nothing outside internal/core should use them. The
// reference monitor can observe unchecked operations via SetAdminHook so
// that even mediation bypasses leave an audit trail.
type Server struct {
	// epoch is the atomically published current policy epoch. Readers
	// load it once per operation and never look back; writeMu serializes
	// the load-derive-stage sequence of every transition.
	epoch   atomic.Pointer[Epoch]
	writeMu sync.Mutex

	// staged is the open batch's successor epoch: mutations staged but
	// not yet published, at the published version + 1. batch tracks the
	// waiters and telemetry of that open batch. Both are guarded by
	// writeMu and nil when no batch is open; see batch.go.
	staged *Epoch
	batch  *pendingBatch

	lat *lattice.Lattice

	// publishes counts epoch publications after boot: the writer-side
	// telemetry counter. The typed counters below split it by the shard
	// that moved; with write combining one publication can carry
	// several shards, so the typed counters may sum to more than
	// publishes.
	publishes    atomic.Uint64
	namePubs     atomic.Uint64
	latticePubs  atomic.Uint64
	registryPubs atomic.Uint64
	stackPubs    atomic.Uint64

	// Batched-publication telemetry: mutations staged through batches,
	// the largest batch one flush published, and the batch-size and
	// flush-latency distributions.
	batchedMutations atomic.Uint64
	maxBatch         atomic.Uint64
	batchSizes       telemetry.Histogram
	flushLat         telemetry.Histogram

	// pipe is the writer-side policy pipeline: Install and remove
	// mutate it, and every newly published stack lands in the next
	// epoch via the change hook. The READ side never touches it — a
	// pinned epoch carries the stack to run.
	pipe atomic.Pointer[monitor.Pipeline]

	// adminHook, when set, observes every unchecked (policy-bypassing)
	// operation: op is a short operation name, path the affected name,
	// err the structural outcome. The hook runs after the operation has
	// published its epoch, with no server lock held, so it may call
	// back into the server freely (including ResolveUnchecked — but a
	// hook that unconditionally re-enters an unchecked operation must
	// guard against its own recursion).
	adminHook atomic.Pointer[func(op, path string, err error)]

	// compiledOff disables epoch compilation (SetCompiledEpochs); it is
	// guarded by writeMu and read only by the flush. The counters and
	// histograms below are the freeze-cost split: how each flush
	// obtained its compiled view (full build, incremental patch,
	// wholesale reuse) and where build time went (ACL summary
	// compilation, effective/visibility bitset recomputation, and the
	// remainder — index walk, map clone, dominance interning).
	compiledOff   bool
	compFull      atomic.Uint64
	compIncr      atomic.Uint64
	compReused    atomic.Uint64
	compIndexNs   telemetry.Histogram
	compSummaryNs telemetry.Histogram
	compVisNs     telemetry.Histogram

	// cache, when set, memoizes CheckAccess verdicts keyed by
	// (subject, class, path, modes) and stamped with the epoch version
	// the verdict was computed against. A hit requires the stamp to
	// equal the pinned epoch's version, so it is provably computed
	// against the current tree AND lattice AND registry AND guard
	// stack — the epoch bundles all four. Install it with
	// SetDecisionCache before the server sees concurrent traffic; only
	// the reference monitor should do so (cached verdicts assume
	// subject names are canonical, which core guarantees). A nil cache
	// means every check takes the full path, as does an epoch whose
	// stack contains a stateful guard (whose verdicts must not be
	// memoized).
	cache atomic.Pointer[decision.Cache]

	// journal retains the last journalCap epoch transitions (version,
	// shards, batch size, freeze delta-bases, compile kind and cost,
	// publish latency) in a lock-free ring; Journal snapshots it
	// without stopping writers.
	journal epochJournal

	// transHook, when set, observes every epoch publication as a
	// (parent, successor) pair, called by the flush under writeMu so
	// transitions arrive in strict version order. Replication wires it
	// to the delta publisher; the hook must only enqueue and return.
	// Guarded by writeMu.
	transHook func(prev, next *Epoch)

	// Shadow divergence monitor: every traced check (the telemetry
	// sampler picks 1/N of all checks) additionally consults the
	// compiled fast path and compares its verdict against the
	// authoritative walk. shadowChecks counts comparisons, divergences
	// counts disagreements — a nonzero divergence count means the
	// compiled bitsets allowed something the walk denied, which is a
	// correctness alarm (the walk's verdict is always the one
	// enforced).
	shadowChecks atomic.Uint64
	divergences  atomic.Uint64

	// strings interns path strings (component names are substrings of
	// the interned paths) and acls dedupes ACL values as they enter the
	// tree; see intern.go. Both are internally synchronized.
	strings interner
	acls    aclCanon
	classes classCanon
}

// NewServer creates a name space whose root carries the given ACL and
// class, guarded by the default [dac, mac] pipeline. The server wires
// itself as the lattice's publish hook: each DefineLevel/DefineCategory
// lands its frozen universe in a new epoch. A lattice therefore backs
// one server; constructing a second server over the same lattice
// re-points the hook at the newer server.
func NewServer(lat *lattice.Lattice, rootACL *acl.ACL, rootClass lattice.Class) *Server {
	if rootACL == nil {
		rootACL = acl.New()
	}
	s := &Server{lat: lat}
	root := &Node{
		path:  "/",
		kind:  KindRoot,
		acl:   s.acls.canon(rootACL),
		class: s.classes.canon(rootClass),
	}
	pipe := monitor.NewPipeline(dacguard.New(), macguard.New())
	s.pipe.Store(pipe)
	s.epoch.Store(&Epoch{
		root:      root,
		version:   1,
		traversal: true,
		lat:       lat.Freeze(),
		stack:     pipe.Current(),
		owned:     1,
		fp:        &fpCell{},
	})
	lat.SetPublishHook(s.stageLattice)
	pipe.SetChangeHook(func(st *monitor.Stack) { s.PublishStack(st) })
	return s
}

// Lattice returns the lattice node classes are drawn from.
func (s *Server) Lattice() *lattice.Lattice { return s.lat }

// Current returns the currently published epoch: one atomic load, no
// locks. The returned epoch is immutable and stays valid (and
// internally consistent) forever; use it to run several reads against
// one version of the whole policy.
func (s *Server) Current() *Epoch { return s.epoch.Load() }

// Version returns the current epoch's version: the unified
// protection-state generation (see Epoch.Version).
func (s *Server) Version() uint64 { return s.epoch.Load().version }

// Publishes returns the number of epochs published since boot — the
// writer-side counter telemetry exposes.
func (s *Server) Publishes() uint64 { return s.publishes.Load() }

// Transitions breaks Publishes down by the policy shard whose change
// drove each publication.
type Transitions struct {
	Names    uint64 // tree mutations (bind/unbind/rename/set-acl/...)
	Lattice  uint64 // lattice universe definitions
	Registry uint64 // principal/group registry mutations
	Stack    uint64 // guard installs/removals and pipeline swaps
}

// EpochTransitions returns the per-shard publication counters.
func (s *Server) EpochTransitions() Transitions {
	return Transitions{
		Names:    s.namePubs.Load(),
		Lattice:  s.latticePubs.Load(),
		Registry: s.registryPubs.Load(),
		Stack:    s.stackPubs.Load(),
	}
}

// PublishLattice is the typed epoch transition for the lattice shard:
// a thin wrapper over the batched publisher that stages f as the
// epoch's universe, flushes, and returns the version the publication
// landed in. The lattice's publish hook (wired by NewServer) goes
// through the staged path directly so definitions can coalesce; this
// entry point is for callers that hold no lattice lock and want the
// change live on return. A nil f is ignored (returns 0).
func (s *Server) PublishLattice(f *lattice.Frozen) uint64 {
	if f == nil {
		return 0
	}
	return s.stageLattice(f)()
}

// PublishRegistry is the typed epoch transition for the principal/group
// shard: a thin wrapper over the batched publisher that stages f as the
// epoch's registry, flushes, and returns the version the publication
// landed in. The registry's publish hook (wired by AttachRegistry) goes
// through the staged path directly so membership edits can coalesce —
// an editor still blocks until its epoch is published, so a revocation
// reaches every future decision before the revoker regains control. A
// nil f is ignored (returns 0).
func (s *Server) PublishRegistry(f *principal.Frozen) uint64 {
	if f == nil {
		return 0
	}
	return s.stageRegistry(f)()
}

// PublishStack is the typed epoch transition for the guard-stack shard:
// it stages st as the epoch's stack, flushes, and returns the version
// the publication landed in. The pipeline's change hook (wired by
// NewServer and SetPipeline) calls it on every Install/remove. A nil st
// is ignored (returns 0).
func (s *Server) PublishStack(st *monitor.Stack) uint64 {
	if st == nil {
		return 0
	}
	s.writeMu.Lock()
	b := s.stageLocked(shardStack, func(e *Epoch) { e.stack = st })
	s.writeMu.Unlock()
	return s.waiter(b)()
}

// AttachRegistry wires the principal/group registry into the policy
// epoch: the registry's publish hook becomes the server's batched
// registry transition, and the registry's current frozen state is
// published immediately so the very next decision pins it. Call during
// setup, before the server sees concurrent traffic; only the reference
// monitor should attach a registry (pinned membership assumes subject
// names are canonical).
func (s *Server) AttachRegistry(reg *principal.Registry) {
	if reg == nil {
		return
	}
	reg.SetPublishHook(s.stageRegistry)
	s.PublishRegistry(reg.Freeze())
}

// Pipeline returns the monitor pipeline the server consults.
func (s *Server) Pipeline() *monitor.Pipeline { return s.pipe.Load() }

// SetPipeline replaces the policy pipeline. Call it during setup,
// before the server sees concurrent traffic; a nil pipeline is
// rejected (a server without policy would fail open). The new
// pipeline's current stack is published as a typed stack transition,
// so cached verdicts from the old stack are dead.
func (s *Server) SetPipeline(p *monitor.Pipeline) {
	if p == nil {
		return
	}
	old := s.pipe.Load()
	if old != nil && old != p {
		old.SetChangeHook(nil)
	}
	p.SetChangeHook(func(st *monitor.Stack) { s.PublishStack(st) })
	s.pipe.Store(p)
	s.PublishStack(p.Current())
}

// SetTransitionHook installs an observer for epoch publications; nil
// removes it. The hook receives every publication as a (parent,
// successor) pair, in strict version order, while the publisher's
// mutex is held — it must only enqueue the pair and return (the
// replication fan-out does its diffing and encoding on its own
// goroutine). Only the replication publisher should install it.
func (s *Server) SetTransitionHook(fn func(prev, next *Epoch)) {
	s.writeMu.Lock()
	s.transHook = fn
	s.writeMu.Unlock()
}

// SetAdminHook installs an observer for unchecked operations; nil
// removes it. Call during setup. The hook runs after the operation
// published, with no lock held, so it may call back into the server.
func (s *Server) SetAdminHook(fn func(op, path string, err error)) {
	if fn == nil {
		s.adminHook.Store(nil)
		return
	}
	s.adminHook.Store(&fn)
}

// admin reports one unchecked operation to the hook, if any. Called
// after the operation's epoch (if any) is published and after writeMu
// is released, so the hook observes the post-operation state.
func (s *Server) admin(op, path string, err error) {
	if fn := s.adminHook.Load(); fn != nil {
		(*fn)(op, path, err)
	}
}

// SetDecisionCache installs (or, with nil, removes) the decision cache
// consulted by CheckAccess. Call it during setup, before the server sees
// concurrent traffic. Only the reference monitor should install a cache:
// cached verdicts are keyed by subject *name*, which is sound only when
// every subject name maps to one identity — core's registry guarantees
// that; arbitrary acl.Subject implementations do not.
func (s *Server) SetDecisionCache(c *decision.Cache) { s.cache.Store(c) }

// DecisionCache returns the installed decision cache (nil if none).
func (s *Server) DecisionCache() *decision.Cache { return s.cache.Load() }

// SetTraversalChecks toggles per-level visibility checks during path
// resolution. Intended for experiments; production systems leave it on.
// The toggle publishes a new epoch version, so cached verdicts computed
// under the other policy are dead.
func (s *Server) SetTraversalChecks(on bool) {
	s.writeMu.Lock()
	wait := s.stageTreeLocked(s.currentLocked().root, on)
	s.writeMu.Unlock()
	wait()
}

// SetCompiledEpochs toggles freeze-time compilation of read-side
// structures (path index, effective-ACL bitsets, dominance table; see
// compiled.go). It is on by default; experiments turn it off to
// measure the spine walk. The toggle republishes the current tree, so
// it takes effect at a new epoch version: off strips the compiled view
// from the next publication onward, on compiles a fresh one.
func (s *Server) SetCompiledEpochs(on bool) {
	s.writeMu.Lock()
	s.compiledOff = !on
	cur := s.currentLocked()
	wait := s.stageTreeLocked(cur.root, cur.traversal)
	s.writeMu.Unlock()
	wait()
}

// describe builds the guard stack's view of node n at path. The node
// comes from a pinned epoch, so the description (ACL, class, multilevel
// flag) is frozen protection state: guards can never observe a torn
// half-applied mutation.
func describe(n *Node, path string) monitor.Object {
	return monitor.Object{Path: path, ACL: n.acl, Class: *n.class, Multilevel: n.multilevel}
}

// checkNode consults the epoch's pinned guard stack for the requested
// modes on node n, which lives at path. Group-ACL entries resolve
// against the epoch's pinned membership relation.
func checkNode(ep *Epoch, n *Node, path string, sub acl.Subject, class lattice.Class, modes acl.Mode, op monitor.Op) error {
	v := ep.stack.Check(monitor.Request{
		Subject: sub, Class: class, Object: describe(n, path), Modes: modes,
		Members: ep.members(), Op: op,
	})
	if !v.Allow {
		return &DeniedError{Path: path, Op: modes.String(), Why: v.Reason}
	}
	return nil
}

// parentOf returns the parent path of a canonical absolute path.
func parentOf(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// resolveIn walks the path inside the pinned epoch, applying traversal
// checks to every interior node strictly above the target when enabled.
// No lock is held at any point. The walk slices components out of path
// in place instead of calling SplitPath, so resolution allocates
// nothing on success; the per-level prefix handed to the guard stack is
// a slice of path, not a rebuilt string.
func resolveIn(ep *Epoch, sub acl.Subject, class lattice.Class, path string, checked bool) (*Node, error) {
	if err := ValidPath(path); err != nil {
		return nil, err
	}
	// Compiled epochs answer resolution from the path index: a bare
	// probe when no checks apply, the precomputed visibility chain when
	// they do. The index decides success only — a miss (unbound path,
	// failing visibility, non-default stack, staged epoch) falls
	// through to the walk, which derives the exact error.
	if n, ok := ep.fastResolve(sub, class, path, checked); ok {
		return n, nil
	}
	cur := ep.root
	// Invariant: rest is the unconsumed suffix of path after the slash
	// that follows the current node's name.
	rest := path[1:]
	for rest != "" {
		part := rest
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			part, rest = rest[:i], rest[i+1:]
		} else {
			rest = ""
		}
		if checked && ep.traversal {
			// Visibility: walking through a node requires list on it
			// and MAC read of it (§2.3: access control determines
			// which names are visible). The node's path is the consumed
			// prefix (the root's is "/").
			prefix := path[:len(path)-len(part)-len(rest)-1]
			if rest != "" {
				prefix = path[:len(path)-len(part)-len(rest)-2]
			}
			if prefix == "" {
				prefix = "/"
			}
			if err := checkNode(ep, cur, prefix, sub, class, acl.List, monitor.OpTraverse); err != nil {
				return nil, err
			}
		}
		next := cur.child(part)
		if next == nil {
			// Report the prefix up to and including the missing name.
			consumed := len(path) - len(rest)
			if rest != "" {
				consumed-- // drop the trailing slash
			}
			return nil, fmt.Errorf("%w: %s", ErrNotFound, path[:consumed])
		}
		cur = next
	}
	return cur, nil
}

// ResolveIn walks to the node at path inside the pinned epoch,
// enforcing visibility along the way. It is Resolve with the epoch
// chosen by the caller: several ResolveIn calls against the same epoch
// observe one consistent version of the policy regardless of concurrent
// mutations.
func (s *Server) ResolveIn(ep *Epoch, sub acl.Subject, class lattice.Class, path string) (*Node, error) {
	return resolveIn(ep, sub, class, path, true)
}

// Resolve walks to the node at path, enforcing visibility along the way.
// The target node itself is not checked; callers apply the operation-
// specific check via CheckAccess or a higher-level operation.
func (s *Server) Resolve(sub acl.Subject, class lattice.Class, path string) (*Node, error) {
	return s.ResolveIn(s.epoch.Load(), sub, class, path)
}

// ResolveUnchecked walks to the node at path with no access checks.
func (s *Server) ResolveUnchecked(path string) (*Node, error) {
	n, err := resolveIn(s.epoch.Load(), nil, lattice.Class{}, path, false)
	s.admin("resolve-unchecked", path, err)
	return n, err
}

// CheckAccess resolves path and verifies that the subject holds the
// requested modes on the target under the guard stack. It returns the
// node on success.
//
// The whole decision — cache probe, resolve, guard evaluation — runs
// against one pinned epoch, so it is computed against exactly one
// published version of the tree, the lattice, the registry, and the
// guard stack; the read side acquires no mutex anywhere. With a
// decision cache installed and a pure (cacheable) stack, a repeated
// check is served from the cache with zero locks and zero allocations;
// the full check runs only on a miss, and its verdict is published
// stamped with the pinned epoch's version, so a mutation of ANY policy
// shard racing with the check leaves the entry unreachable the moment
// it lands.
func (s *Server) CheckAccess(sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (*Node, error) {
	n, _, err := s.CheckAccessAt(sub, class, path, modes)
	return n, err
}

// CheckAccessAt is CheckAccess plus the deciding epoch's version, so
// callers (the reference monitor's audit path) can stamp the decision
// with the exact protection-state generation it was computed against —
// a cache hit included, since a hit requires the stamp to equal the
// pinned version.
func (s *Server) CheckAccessAt(sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (*Node, uint64, error) {
	ep := s.epoch.Load()
	cache := s.cache.Load()
	if cache == nil || !ep.stack.Cacheable() {
		n, err := checkAccessIn(ep, sub, class, path, modes)
		return n, ep.version, err
	}
	name := sub.SubjectName()
	if node, err, ok := cache.Lookup(ep.version, name, class, path, modes); ok {
		if err != nil {
			return nil, ep.version, err
		}
		return node.(*Node), ep.version, nil
	}
	n, err := checkAccessIn(ep, sub, class, path, modes)
	// Cache grants and access denials only. Structural errors
	// (ErrNotFound, ErrBadPath) are cheap to recompute and their error
	// values carry no security weight worth pinning.
	if err == nil {
		cache.StoreAt(ep.version, name, class, path, modes, n, nil)
	} else if errors.Is(err, ErrDenied) {
		cache.StoreAt(ep.version, name, class, path, modes, nil, err)
	}
	return n, ep.version, err
}

// CheckAccessTraced is CheckAccess with stage-by-stage observability:
// the pinned epoch version, the decision-cache probe, the path
// resolution, and each guard's verdict land as spans on tr. It is
// invoked only for requests the telemetry sampler selected, so the
// extra clock reads never touch the common path; the decision returned
// is identical to CheckAccess's.
func (s *Server) CheckAccessTraced(sub acl.Subject, class lattice.Class, path string, modes acl.Mode, tr *telemetry.ActiveTrace) (*Node, error) {
	n, _, err := s.CheckAccessTracedAt(sub, class, path, modes, tr)
	return n, err
}

// CheckAccessTracedAt is CheckAccessTraced plus the deciding epoch's
// version (see CheckAccessAt).
func (s *Server) CheckAccessTracedAt(sub acl.Subject, class lattice.Class, path string, modes acl.Mode, tr *telemetry.ActiveTrace) (*Node, uint64, error) {
	ep := s.epoch.Load()
	tr.EpochVersion(ep.version)
	cache := s.cache.Load()
	if cache == nil {
		n, err := s.checkAccessInTraced(ep, sub, class, path, modes, tr)
		return n, ep.version, err
	}
	if !ep.stack.Cacheable() {
		tr.Span("cache-skip", "stateful guard", 0)
		n, err := s.checkAccessInTraced(ep, sub, class, path, modes, tr)
		return n, ep.version, err
	}
	name := sub.SubjectName()
	start := time.Now()
	node, err, ok := cache.Lookup(ep.version, name, class, path, modes)
	tr.CacheProbe(ok, ep.version, time.Since(start))
	if ok {
		if err != nil {
			return nil, ep.version, err
		}
		return node.(*Node), ep.version, nil
	}
	n, err := s.checkAccessInTraced(ep, sub, class, path, modes, tr)
	if err == nil {
		cache.StoreAt(ep.version, name, class, path, modes, n, nil)
	} else if errors.Is(err, ErrDenied) {
		cache.StoreAt(ep.version, name, class, path, modes, nil, err)
	}
	return n, ep.version, err
}

// CheckAccessIn is the uncached full check pinned to a caller-chosen
// epoch: resolve inside ep, then verify the target under ep's guard
// stack. Tests and experiments use it to prove a decision was computed
// against one specific published version.
func (s *Server) CheckAccessIn(ep *Epoch, sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (*Node, error) {
	return checkAccessIn(ep, sub, class, path, modes)
}

// checkAccessIn is the uncached check: resolve inside the pinned epoch,
// then verify the target. On a compiled epoch with the default stack
// the whole decision — resolution visibility, DAC, MAC — is answered
// from the freeze-time structures (one index probe plus a few bitset
// tests); everything the fast path cannot prove allowed takes the walk.
func checkAccessIn(ep *Epoch, sub acl.Subject, class lattice.Class, path string, modes acl.Mode) (*Node, error) {
	if n, ok := ep.fastCheck(sub, class, path, modes); ok {
		return n, nil
	}
	n, err := resolveIn(ep, sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if err := checkNode(ep, n, path, sub, class, modes, monitor.OpAccess); err != nil {
		return nil, err
	}
	return n, nil
}

// checkAccessInTraced mirrors checkAccessIn, recording the resolve
// duration as a span and running the guard stack through CheckTraced so
// each guard's verdict is visible individually. Because it runs only
// for the 1/N of checks the telemetry sampler selects, it doubles as
// the shadow divergence monitor: it takes the authoritative walk
// unconditionally, then consults the compiled fast path and compares.
// The walk's verdict is always the one returned.
func (s *Server) checkAccessInTraced(ep *Epoch, sub acl.Subject, class lattice.Class, path string, modes acl.Mode, tr *telemetry.ActiveTrace) (*Node, error) {
	start := time.Now()
	n, err := resolveIn(ep, sub, class, path, true)
	tr.Span("resolve", "", time.Since(start))
	var werr error
	if err != nil {
		werr = err
	} else {
		v := ep.stack.CheckTraced(monitor.Request{
			Subject: sub, Class: class, Object: describe(n, path), Modes: modes,
			Members: ep.members(), Op: monitor.OpAccess,
		}, tr)
		if !v.Allow {
			werr = &DeniedError{Path: path, Op: modes.String(), Why: v.Reason}
		}
	}
	if ep.compiled != nil && sub != nil {
		s.shadowChecks.Add(1)
		if _, allowed := ep.fastCheck(sub, class, path, modes); allowed && werr != nil {
			// The compiled bitsets proved ALLOW while the walk denied:
			// the freeze-time structures disagree with the authoritative
			// evaluation. Alarm, but enforce the walk's verdict.
			s.divergences.Add(1)
			tr.Span("shadow", "DIVERGENCE: compiled=allow walk=deny", 0)
		} else {
			tr.Span("shadow", "no divergence", 0)
		}
	}
	if werr != nil {
		return nil, werr
	}
	return n, nil
}

// List returns the names bound under path, requiring list mode and MAC
// read on the target.
func (s *Server) List(sub acl.Subject, class lattice.Class, path string) ([]string, error) {
	ep := s.epoch.Load()
	n, err := resolveIn(ep, sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if n.kind.Leaf() {
		return nil, fmt.Errorf("%w: %s is a %s", ErrNotLeaf, path, n.kind)
	}
	if err := checkNode(ep, n, path, sub, class, acl.List, monitor.OpAccess); err != nil {
		return nil, err
	}
	return n.childNames(), nil
}

// BindSpec describes a new node for Bind.
type BindSpec struct {
	Name    string        // final path component
	Kind    Kind          // node kind
	ACL     *acl.ACL      // nil means empty (fail-closed)
	Class   lattice.Class // security class of the new node
	Payload any           // service implementation, file handle, etc.
	// Multilevel marks the new node as a multilevel container; see
	// Node.Multilevel.
	Multilevel bool
}

// Bind creates a new node under parentPath. The subject needs write mode
// on the parent (§2.3: "whether an extension can add new entries"), MAC
// write to the parent, and may only label the new node with a class it
// could itself write to (preventing creation of objects below the
// subject's own class, which would constitute a write-down channel).
// Multilevel containers waive the parent's no-write-down rule
// (monitor.OpContainerBind).
func (s *Server) Bind(sub acl.Subject, class lattice.Class, parentPath string, spec BindSpec) (*Node, error) {
	n, _, err := s.BindAt(sub, class, parentPath, spec)
	return n, err
}

// BindAt is Bind returning the epoch version the binding landed in:
// every reader pinning that version or later sees the new node.
func (s *Server) BindAt(sub acl.Subject, class lattice.Class, parentPath string, spec BindSpec) (*Node, uint64, error) {
	n, wait, err := s.bindChecked(sub, class, parentPath, spec)
	if err != nil {
		return nil, 0, err
	}
	return n, wait(), nil
}

func (s *Server) bindChecked(sub acl.Subject, class lattice.Class, parentPath string, spec BindSpec) (*Node, func() uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	parent, err := resolveIn(ep, sub, class, parentPath, true)
	if err != nil {
		return nil, nil, err
	}
	op := monitor.OpAccess
	if parent.multilevel {
		op = monitor.OpContainerBind
	}
	if err := checkNode(ep, parent, parentPath, sub, class, acl.Write, op); err != nil {
		return nil, nil, err
	}
	if v := ep.stack.Check(monitor.Request{
		Subject: sub, Class: class, Object: describe(parent, parentPath),
		NewClass: spec.Class, Members: ep.members(), Op: monitor.OpCreate,
	}); !v.Allow {
		return nil, nil, &DeniedError{Path: Join(parentPath, spec.Name), Op: "bind", Why: v.Reason}
	}
	return s.bindLocked(ep, parent, spec)
}

// BindUnchecked creates a node with no access checks; for bootstrap.
func (s *Server) BindUnchecked(parentPath string, spec BindSpec) (*Node, error) {
	n, _, err := s.BindUncheckedAt(parentPath, spec)
	return n, err
}

// BindUncheckedAt is BindUnchecked returning the epoch version the
// binding landed in.
func (s *Server) BindUncheckedAt(parentPath string, spec BindSpec) (*Node, uint64, error) {
	n, wait, err := s.bindUnchecked(parentPath, spec)
	var v uint64
	if err == nil {
		v = wait()
	}
	s.admin("bind-unchecked", Join(parentPath, spec.Name), err)
	return n, v, err
}

func (s *Server) bindUnchecked(parentPath string, spec BindSpec) (*Node, func() uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	parent, err := resolveIn(ep, nil, lattice.Class{}, parentPath, false)
	if err != nil {
		return nil, nil, err
	}
	return s.bindLocked(ep, parent, spec)
}

// bindLocked builds and stages the successor tree containing the new
// node, returning the wait function the mutator calls after releasing
// writeMu. Caller holds writeMu; parent belongs to ep, the epoch
// returned by currentLocked (writers are serialized, so it reflects
// every staged mutation).
func (s *Server) bindLocked(ep *Epoch, parent *Node, spec BindSpec) (*Node, func() uint64, error) {
	if err := ValidComponent(spec.Name); err != nil {
		return nil, nil, err
	}
	if parent.kind.Leaf() {
		return nil, nil, fmt.Errorf("%w: %s", ErrLeaf, parent.Path())
	}
	if !spec.Class.Valid() || spec.Class.Lattice() != s.lat {
		return nil, nil, fmt.Errorf("%w: node class must come from the server lattice", ErrBadPath)
	}
	if parent.child(spec.Name) != nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrExists, Join(parent.Path(), spec.Name))
	}
	childPath := s.strings.intern(Join(parent.Path(), spec.Name))
	n := &Node{
		path:       childPath,
		kind:       spec.Kind,
		acl:        s.acls.canon(spec.ACL),
		class:      s.classes.canon(spec.Class),
		payload:    spec.Payload,
		multilevel: spec.Multilevel && !spec.Kind.Leaf(),
	}
	parts, err := SplitPath(childPath)
	if err != nil {
		return nil, nil, err
	}
	return n, s.stageTreeLocked(rebind(ep.root, parts, n), ep.traversal), nil
}

// Unbind removes the node at path. The subject needs delete mode on the
// target, write mode on the parent, and MAC write to both (the parent's
// MAC rule is waived for multilevel containers). Non-empty nodes cannot
// be unbound.
func (s *Server) Unbind(sub acl.Subject, class lattice.Class, path string) error {
	_, err := s.UnbindAt(sub, class, path)
	return err
}

// UnbindAt is Unbind returning the epoch version the removal landed in:
// every reader pinning that version or later no longer sees the node.
func (s *Server) UnbindAt(sub acl.Subject, class lattice.Class, path string) (uint64, error) {
	wait, err := s.unbindChecked(sub, class, path)
	if err != nil {
		return 0, err
	}
	return wait(), nil
}

func (s *Server) unbindChecked(sub acl.Subject, class lattice.Class, path string) (func() uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	n, err := resolveIn(ep, sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if n.path == "/" {
		return nil, ErrRoot
	}
	if len(n.children) > 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	parent, err := resolveIn(ep, nil, lattice.Class{}, parentOf(n.path), false)
	if err != nil {
		return nil, err
	}
	if err := checkNode(ep, n, path, sub, class, acl.Delete, monitor.OpAccess); err != nil {
		return nil, err
	}
	op := monitor.OpAccess
	if parent.multilevel {
		op = monitor.OpContainerUnbind
	}
	if err := checkNode(ep, parent, parentOf(path), sub, class, acl.Write, op); err != nil {
		return nil, err
	}
	parts, err := SplitPath(n.path)
	if err != nil {
		return nil, err
	}
	return s.stageTreeLocked(rebind(ep.root, parts, nil), ep.traversal), nil
}

// Rename moves the node at oldPath to newParentPath/newName. The
// subject needs delete on the node, write on both the old and the new
// parent (multilevel waivers apply to each side independently), and the
// usual MAC rules; the node keeps its ACL, class, payload, and
// children. Renaming across class boundaries never relabels: the name
// moves, the protection does not.
//
// The move is one atomic publication: a concurrent reader sees the
// wholly-old or the wholly-new tree, never a state where the subtree is
// reachable under both names or neither.
func (s *Server) Rename(sub acl.Subject, class lattice.Class, oldPath, newParentPath, newName string) error {
	_, err := s.RenameAt(sub, class, oldPath, newParentPath, newName)
	return err
}

// RenameAt is Rename returning the epoch version the move landed in.
func (s *Server) RenameAt(sub acl.Subject, class lattice.Class, oldPath, newParentPath, newName string) (uint64, error) {
	wait, err := s.renameChecked(sub, class, oldPath, newParentPath, newName)
	if err != nil {
		return 0, err
	}
	return wait(), nil
}

func (s *Server) renameChecked(sub acl.Subject, class lattice.Class, oldPath, newParentPath, newName string) (func() uint64, error) {
	if err := ValidComponent(newName); err != nil {
		return nil, err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	n, err := resolveIn(ep, sub, class, oldPath, true)
	if err != nil {
		return nil, err
	}
	if n.path == "/" {
		return nil, ErrRoot
	}
	newParent, err := resolveIn(ep, sub, class, newParentPath, true)
	if err != nil {
		return nil, err
	}
	if newParent.kind.Leaf() {
		return nil, fmt.Errorf("%w: %s", ErrLeaf, newParentPath)
	}
	// A node must not become its own ancestor. Paths in one epoch are
	// canonical, so "inside n's subtree" is a prefix question.
	if newParent.path == n.path || strings.HasPrefix(newParent.path, n.path+"/") {
		return nil, fmt.Errorf("%w: cannot move %s under itself", ErrBadPath, oldPath)
	}
	if newParent.child(newName) != nil {
		return nil, fmt.Errorf("%w: %s", ErrExists, Join(newParentPath, newName))
	}
	if err := checkNode(ep, n, oldPath, sub, class, acl.Delete, monitor.OpAccess); err != nil {
		return nil, err
	}
	oldParent, err := resolveIn(ep, nil, lattice.Class{}, parentOf(n.path), false)
	if err != nil {
		return nil, err
	}
	checkParent := func(p *Node, path string) error {
		op := monitor.OpAccess
		if p.multilevel {
			op = monitor.OpContainerUnbind
		}
		return checkNode(ep, p, path, sub, class, acl.Write, op)
	}
	if err := checkParent(oldParent, parentOf(oldPath)); err != nil {
		return nil, err
	}
	if err := checkParent(newParent, newParentPath); err != nil {
		return nil, err
	}
	oldParts, err := SplitPath(n.path)
	if err != nil {
		return nil, err
	}
	newPath := Join(newParent.path, newName)
	newParts, err := SplitPath(newPath)
	if err != nil {
		return nil, err
	}
	// Detach the subtree, deep-copy it under its new name and paths
	// (published nodes never change, so old epochs keep the old
	// paths), then insert — all on the private successor tree, then one
	// publication.
	detached := rebind(ep.root, oldParts, nil)
	moved := relocate(n, newPath, &s.strings)
	return s.stageTreeLocked(rebind(detached, newParts, moved), ep.traversal), nil
}

// UnbindUnchecked removes the node at path with no access checks.
func (s *Server) UnbindUnchecked(path string) error {
	_, err := s.UnbindUncheckedAt(path)
	return err
}

// UnbindUncheckedAt is UnbindUnchecked returning the epoch version the
// removal landed in.
func (s *Server) UnbindUncheckedAt(path string) (uint64, error) {
	wait, err := s.unbindUnchecked(path)
	var v uint64
	if err == nil {
		v = wait()
	}
	s.admin("unbind-unchecked", path, err)
	return v, err
}

func (s *Server) unbindUnchecked(path string) (func() uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	n, err := resolveIn(ep, nil, lattice.Class{}, path, false)
	if err != nil {
		return nil, err
	}
	if n.path == "/" {
		return nil, ErrRoot
	}
	if len(n.children) > 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotEmpty, path)
	}
	parts, err := SplitPath(n.path)
	if err != nil {
		return nil, err
	}
	return s.stageTreeLocked(rebind(ep.root, parts, nil), ep.traversal), nil
}

// GetACL returns a copy of the node's ACL. Reading the protection state
// requires read or administrate mode (the AnyOf disjunction) and MAC
// read.
func (s *Server) GetACL(sub acl.Subject, class lattice.Class, path string) (*acl.ACL, error) {
	ep := s.epoch.Load()
	n, err := resolveIn(ep, sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if v := ep.stack.Check(monitor.Request{
		Subject: sub, Class: class, Object: describe(n, path),
		Modes: acl.Read, AnyOf: acl.Read | acl.Administrate,
		Members: ep.members(), Op: monitor.OpAccess,
	}); !v.Allow {
		return nil, &DeniedError{Path: path, Op: "get-acl", Why: v.Reason}
	}
	return n.acl.Clone(), nil
}

// SetACL replaces the node's ACL. Changing protection is the
// administrate mode (§2.1) and is MAC-wise a write.
func (s *Server) SetACL(sub acl.Subject, class lattice.Class, path string, newACL *acl.ACL) error {
	_, err := s.SetACLAt(sub, class, path, newACL)
	return err
}

// SetACLAt is SetACL returning the epoch version the new ACL landed in:
// a caller revoking a grant can assert "no decision computed against
// that version or later honors the old ACL".
func (s *Server) SetACLAt(sub acl.Subject, class lattice.Class, path string, newACL *acl.ACL) (uint64, error) {
	wait, err := s.setACLChecked(sub, class, path, newACL)
	if err != nil {
		return 0, err
	}
	return wait(), nil
}

func (s *Server) setACLChecked(sub acl.Subject, class lattice.Class, path string, newACL *acl.ACL) (func() uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	n, err := resolveIn(ep, sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if err := checkNode(ep, n, path, sub, class, acl.Administrate, monitor.OpAccess); err != nil {
		return nil, err
	}
	return s.replaceLocked(ep, n, func(c *Node) { c.acl = s.acls.canon(newACL) })
}

// SetACLUnchecked replaces a node's ACL with no access checks.
func (s *Server) SetACLUnchecked(path string, newACL *acl.ACL) error {
	_, err := s.SetACLUncheckedAt(path, newACL)
	return err
}

// SetACLUncheckedAt is SetACLUnchecked returning the epoch version the
// new ACL landed in.
func (s *Server) SetACLUncheckedAt(path string, newACL *acl.ACL) (uint64, error) {
	wait, err := s.setACLUnchecked(path, newACL)
	var v uint64
	if err == nil {
		v = wait()
	}
	s.admin("set-acl-unchecked", path, err)
	return v, err
}

func (s *Server) setACLUnchecked(path string, newACL *acl.ACL) (func() uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	n, err := resolveIn(ep, nil, lattice.Class{}, path, false)
	if err != nil {
		return nil, err
	}
	return s.replaceLocked(ep, n, func(c *Node) { c.acl = s.acls.canon(newACL) })
}

// ACLEdit is one path/ACL pair for SetACLsUnchecked.
type ACLEdit struct {
	Path string
	ACL  *acl.ACL
}

// SetACLsUnchecked installs several ACLs in one published epoch, with
// no access checks. The edits are atomic — all-or-nothing: if any path
// fails to resolve, no edit is applied and the published state is
// untouched. One epoch carries the whole batch, so a policy document
// installing N grants costs one publication instead of N. It returns
// the epoch version the batch landed in; an empty edit list is a no-op
// returning 0.
func (s *Server) SetACLsUnchecked(edits []ACLEdit) (uint64, error) {
	if len(edits) == 0 {
		return 0, nil
	}
	wait, err := s.setACLsUnchecked(edits)
	if err != nil {
		return 0, err
	}
	v := wait()
	for _, e := range edits {
		s.admin("set-acl-unchecked", e.Path, nil)
	}
	return v, nil
}

func (s *Server) setACLsUnchecked(edits []ACLEdit) (func() uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	root := ep.root
	// Resolve each edit against the accumulating successor tree so
	// edits later in the batch see earlier ones; scratch carries the
	// in-progress root through resolveIn without touching ep.
	scratch := *ep
	// The scratch epoch's root diverges from ep's as edits accumulate;
	// a copied compiled view would keep answering from ep's index, so
	// it must not come along.
	scratch.compiled = nil
	for _, e := range edits {
		scratch.root = root
		n, err := resolveIn(&scratch, nil, lattice.Class{}, e.Path, false)
		if err != nil {
			s.admin("set-acl-unchecked", e.Path, err)
			return nil, err
		}
		c := n.clone()
		c.acl = s.acls.canon(e.ACL)
		parts, err := SplitPath(n.path)
		if err != nil {
			return nil, err
		}
		root = rebind(root, parts, c)
	}
	return s.stageTreeLocked(root, ep.traversal), nil
}

// replaceLocked stages a successor tree in which node n (from epoch
// ep) is replaced by a clone that mutate has edited, returning the
// wait function the mutator calls after releasing writeMu. The clone
// keeps the children map, so only the single node changes; the spine
// above it is re-cloned by rebind. Caller holds writeMu.
func (s *Server) replaceLocked(ep *Epoch, n *Node, mutate func(c *Node)) (func() uint64, error) {
	c := n.clone()
	mutate(c)
	parts, err := SplitPath(n.path)
	if err != nil {
		return nil, err
	}
	return s.stageTreeLocked(rebind(ep.root, parts, c), ep.traversal), nil
}

// SetClass relabels the node. Relabeling violates tranquility, so it is
// gated on administrate mode and the relabel flow rules (a read of the
// old label, a write of the new).
func (s *Server) SetClass(sub acl.Subject, class lattice.Class, path string, newClass lattice.Class) error {
	_, err := s.SetClassAt(sub, class, path, newClass)
	return err
}

// SetClassAt is SetClass returning the epoch version the relabel landed
// in.
func (s *Server) SetClassAt(sub acl.Subject, class lattice.Class, path string, newClass lattice.Class) (uint64, error) {
	wait, err := s.setClassChecked(sub, class, path, newClass)
	if err != nil {
		return 0, err
	}
	return wait(), nil
}

func (s *Server) setClassChecked(sub acl.Subject, class lattice.Class, path string, newClass lattice.Class) (func() uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	n, err := resolveIn(ep, sub, class, path, true)
	if err != nil {
		return nil, err
	}
	if !newClass.Valid() || newClass.Lattice() != s.lat {
		return nil, fmt.Errorf("%w: class must come from the server lattice", ErrBadPath)
	}
	if err := checkNode(ep, n, path, sub, class, acl.Administrate, monitor.OpAccess); err != nil {
		return nil, err
	}
	if v := ep.stack.Check(monitor.Request{
		Subject: sub, Class: class, Object: describe(n, path),
		NewClass: newClass, Members: ep.members(), Op: monitor.OpRelabel,
	}); !v.Allow {
		return nil, &DeniedError{Path: path, Op: "set-class", Why: v.Reason}
	}
	return s.replaceLocked(ep, n, func(c *Node) { c.class = s.classes.canon(newClass) })
}

// SetClassUnchecked relabels a node with no access checks; for
// bootstrap and experiments.
func (s *Server) SetClassUnchecked(path string, newClass lattice.Class) error {
	_, err := s.SetClassUncheckedAt(path, newClass)
	return err
}

// SetClassUncheckedAt is SetClassUnchecked returning the epoch version
// the relabel landed in.
func (s *Server) SetClassUncheckedAt(path string, newClass lattice.Class) (uint64, error) {
	wait, err := s.setClassUnchecked(path, newClass)
	var v uint64
	if err == nil {
		v = wait()
	}
	s.admin("set-class-unchecked", path, err)
	return v, err
}

func (s *Server) setClassUnchecked(path string, newClass lattice.Class) (func() uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	n, err := resolveIn(ep, nil, lattice.Class{}, path, false)
	if err != nil {
		return nil, err
	}
	if !newClass.Valid() || newClass.Lattice() != s.lat {
		return nil, fmt.Errorf("%w: class must come from the server lattice", ErrBadPath)
	}
	return s.replaceLocked(ep, n, func(c *Node) { c.class = s.classes.canon(newClass) })
}

// ACLOf returns a copy of a node's ACL with no checks (monitor use).
func (s *Server) ACLOf(path string) (*acl.ACL, error) {
	n, err := resolveIn(s.epoch.Load(), nil, lattice.Class{}, path, false)
	if err != nil {
		return nil, err
	}
	return n.acl.Clone(), nil
}

// SetPayload replaces the payload at path with no access checks
// (monitor and service bootstrap use). Readers that already resolved
// the node keep the payload of their epoch; the data plane behind a
// payload handle is shared by reference across epochs and does its own
// locking.
func (s *Server) SetPayload(path string, payload any) error {
	wait, err := s.setPayload(path, payload)
	if err == nil {
		wait()
	}
	s.admin("set-payload", path, err)
	return err
}

func (s *Server) setPayload(path string, payload any) (func() uint64, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	ep := s.currentLocked()
	n, err := resolveIn(ep, nil, lattice.Class{}, path, false)
	if err != nil {
		return nil, err
	}
	return s.replaceLocked(ep, n, func(c *Node) { c.payload = payload })
}

// Walk visits every node in the current epoch in depth-first order
// with no access checks, calling fn with each node's path and node.
// Iteration is deterministic (children in lexicographic name order) and
// holds no lock: fn may call back into the server, including mutating
// it — the walk keeps observing the epoch pinned when it started.
func (s *Server) Walk(fn func(path string, n *Node)) {
	s.epoch.Load().Walk(fn)
}

// Size returns the number of nodes in the current epoch, including
// the root.
func (s *Server) Size() int {
	return s.epoch.Load().Size()
}
