package names

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"secext/internal/acl"
	"secext/internal/lattice"
)

// fakeSubject implements acl.Subject.
type fakeSubject struct {
	name   string
	groups map[string]bool
}

func (f fakeSubject) SubjectName() string    { return f.name }
func (f fakeSubject) MemberOf(g string) bool { return f.groups[g] }

func subj(name string) fakeSubject { return fakeSubject{name: name} }

type fixture struct {
	lat  *lattice.Lattice
	srv  *Server
	top  lattice.Class
	bot  lattice.Class
	org  lattice.Class
	root fakeSubject // all-powerful subject
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	lat, err := lattice.NewWithUniverse(
		[]string{"others", "organization", "local"},
		[]string{"dept-1", "dept-2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := lat.Top()
	bot, _ := lat.Bottom()
	rootACL := acl.New(
		acl.Allow("root", acl.AllModes),
		acl.AllowEveryone(acl.List),
	)
	srv := NewServer(lat, rootACL, bot)
	return &fixture{
		lat: lat, srv: srv, top: top, bot: bot,
		org:  lat.MustClass("organization", "dept-1"),
		root: subj("root"),
	}
}

// mkTree builds /svc/fs/read with permissive defaults for root.
func (f *fixture) mkTree(t *testing.T) {
	t.Helper()
	openACL := acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List))
	specs := []struct {
		parent string
		spec   BindSpec
	}{
		{"/", BindSpec{Name: "svc", Kind: KindDomain, ACL: openACL, Class: f.bot}},
		{"/svc", BindSpec{Name: "fs", Kind: KindInterface, ACL: openACL, Class: f.bot}},
		{"/svc/fs", BindSpec{Name: "read", Kind: KindMethod, ACL: openACL, Class: f.bot, Payload: "read-impl"}},
	}
	for _, s := range specs {
		if _, err := f.srv.BindUnchecked(s.parent, s.spec); err != nil {
			t.Fatalf("BindUnchecked(%s/%s): %v", s.parent, s.spec.Name, err)
		}
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		ok   bool
	}{
		{"/", nil, true},
		{"/a", []string{"a"}, true},
		{"/a/b/c", []string{"a", "b", "c"}, true},
		{"", nil, false},
		{"a/b", nil, false},
		{"/a//b", nil, false},
		{"/a/./b", nil, false},
		{"/a/../b", nil, false},
		{"/a/", nil, false},
	}
	for _, tc := range cases {
		got, err := SplitPath(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("SplitPath(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if err == nil && len(got) != len(tc.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if err != nil && !errors.Is(err, ErrBadPath) {
			t.Errorf("SplitPath(%q): error %v must wrap ErrBadPath", tc.in, err)
		}
	}
}

func TestJoin(t *testing.T) {
	cases := []struct{ prefix, want string }{
		{"/", "/a/b"},
		{"/x", "/x/a/b"},
		{"/x/", "/x/a/b"},
	}
	for _, tc := range cases {
		if got := Join(tc.prefix, "a", "b"); got != tc.want {
			t.Errorf("Join(%q, a, b) = %q, want %q", tc.prefix, got, tc.want)
		}
	}
	if got := Join("/"); got != "/" {
		t.Errorf("Join(/) = %q", got)
	}
}

func TestBindAndResolve(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	n, err := f.srv.ResolveUnchecked("/svc/fs/read")
	if err != nil {
		t.Fatalf("ResolveUnchecked: %v", err)
	}
	if n.Path() != "/svc/fs/read" {
		t.Errorf("Path = %q", n.Path())
	}
	if n.Kind() != KindMethod || !n.Kind().Leaf() {
		t.Errorf("Kind = %v", n.Kind())
	}
	if n.Payload() != "read-impl" {
		t.Errorf("Payload = %v", n.Payload())
	}
	if n.Name() != "read" {
		t.Errorf("Name = %q", n.Name())
	}
	root, err := f.srv.ResolveUnchecked("/")
	if err != nil || root.Path() != "/" || root.Kind() != KindRoot {
		t.Errorf("root resolve: %v %v", root, err)
	}
}

func TestResolveNotFound(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	_, err := f.srv.ResolveUnchecked("/svc/nope/x")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if !strings.Contains(err.Error(), "/svc/nope") {
		t.Errorf("error must name the failing prefix: %v", err)
	}
}

func TestBindChecked(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	alice := subj("alice")
	// alice has no write on /svc/fs.
	_, err := f.srv.Bind(alice, f.top, "/svc/fs", BindSpec{
		Name: "write", Kind: KindMethod, Class: f.bot,
	})
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("unauthorized bind: got %v, want ErrDenied", err)
	}
	// Grant alice write and retry; class must dominate hers (top wrote
	// at bot would be write-down).
	aclFS := acl.New(acl.Allow("alice", acl.Write|acl.List))
	if err := f.srv.SetACLUnchecked("/svc/fs", aclFS); err != nil {
		t.Fatal(err)
	}
	_, err = f.srv.Bind(alice, f.top, "/svc/fs", BindSpec{
		Name: "write", Kind: KindMethod, Class: f.bot,
	})
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("write-down bind: got %v, want ErrDenied", err)
	}
	// MAC write to the parent fails too when subject is top and parent
	// is bot; use a bot-class subject binding a bot node instead.
	_, err = f.srv.Bind(alice, f.bot, "/svc/fs", BindSpec{
		Name: "write", Kind: KindMethod, Class: f.bot, Payload: "w",
	})
	if err != nil {
		t.Fatalf("authorized bind: %v", err)
	}
	if _, err := f.srv.ResolveUnchecked("/svc/fs/write"); err != nil {
		t.Fatalf("bound node missing: %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	// Duplicate name.
	_, err := f.srv.BindUnchecked("/svc", BindSpec{Name: "fs", Kind: KindInterface, Class: f.bot})
	if !errors.Is(err, ErrExists) {
		t.Errorf("dup bind: got %v, want ErrExists", err)
	}
	// Child of a leaf.
	_, err = f.srv.BindUnchecked("/svc/fs/read", BindSpec{Name: "x", Kind: KindMethod, Class: f.bot})
	if !errors.Is(err, ErrLeaf) {
		t.Errorf("bind under leaf: got %v, want ErrLeaf", err)
	}
	// Bad component.
	for _, bad := range []string{"", ".", "..", "a/b"} {
		_, err = f.srv.BindUnchecked("/svc", BindSpec{Name: bad, Kind: KindObject, Class: f.bot})
		if !errors.Is(err, ErrBadPath) {
			t.Errorf("bind %q: got %v, want ErrBadPath", bad, err)
		}
	}
	// Foreign/zero class.
	other, _ := lattice.NewWithUniverse([]string{"x"}, nil)
	_, err = f.srv.BindUnchecked("/svc", BindSpec{Name: "z", Kind: KindObject, Class: other.MustClass("x")})
	if err == nil {
		t.Error("foreign class bind must fail")
	}
	_, err = f.srv.BindUnchecked("/svc", BindSpec{Name: "z", Kind: KindObject})
	if err == nil {
		t.Error("zero class bind must fail")
	}
}

func TestTraversalVisibility(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	mallory := subj("mallory")
	// Root allows everyone list, but /svc does too; tighten /svc so
	// mallory cannot see through it.
	if err := f.srv.SetACLUnchecked("/svc", acl.New(acl.Allow("root", acl.AllModes))); err != nil {
		t.Fatal(err)
	}
	_, err := f.srv.Resolve(mallory, f.top, "/svc/fs/read")
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("traversal through hidden node: got %v, want ErrDenied", err)
	}
	var de *DeniedError
	if !errors.As(err, &de) || de.Path != "/svc" {
		t.Errorf("denial must point at /svc: %v", err)
	}
	// Root still passes.
	if _, err := f.srv.Resolve(f.root, f.top, "/svc/fs/read"); err != nil {
		t.Fatalf("root traversal: %v", err)
	}
	// With traversal checks off, mallory resolves (monitor may still
	// check the target).
	f.srv.SetTraversalChecks(false)
	if _, err := f.srv.Resolve(mallory, f.top, "/svc/fs/read"); err != nil {
		t.Fatalf("unchecked traversal: %v", err)
	}
}

func TestTraversalMACVisibility(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	// Put /svc at organization class: a bottom-class subject cannot
	// even see through it although the ACL allows everyone list.
	if err := f.srv.SetClassUnchecked("/svc", f.org); err != nil {
		t.Fatal(err)
	}
	_, err := f.srv.Resolve(f.root, f.bot, "/svc/fs/read")
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("MAC traversal: got %v, want ErrDenied", err)
	}
	if _, err := f.srv.Resolve(f.root, f.top, "/svc/fs/read"); err != nil {
		t.Fatalf("dominating subject traversal: %v", err)
	}
}

func TestList(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	got, err := f.srv.List(f.root, f.top, "/svc")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(got) != 1 || got[0] != "fs" {
		t.Errorf("List = %v", got)
	}
	if _, err := f.srv.List(f.root, f.top, "/svc/fs/read"); !errors.Is(err, ErrNotLeaf) {
		t.Errorf("List on leaf: got %v, want ErrNotLeaf", err)
	}
	if _, err := f.srv.List(subj("nobody"), f.bot, "/svc"); err != nil {
		t.Errorf("everyone has list on /svc: %v", err)
	}
	if err := f.srv.SetACLUnchecked("/svc", acl.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.List(subj("nobody"), f.bot, "/svc"); !errors.Is(err, ErrDenied) {
		t.Errorf("List without mode: got %v, want ErrDenied", err)
	}
}

func TestCheckAccessModes(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	a := acl.New(acl.Allow("ext", acl.Execute), acl.AllowEveryone(acl.List))
	if err := f.srv.SetACLUnchecked("/svc/fs/read", a); err != nil {
		t.Fatal(err)
	}
	ext := subj("ext")
	if _, err := f.srv.CheckAccess(ext, f.bot, "/svc/fs/read", acl.Execute); err != nil {
		t.Errorf("execute: %v", err)
	}
	if _, err := f.srv.CheckAccess(ext, f.bot, "/svc/fs/read", acl.Extend); !errors.Is(err, ErrDenied) {
		t.Errorf("extend without mode: got %v, want ErrDenied", err)
	}
	// MAC: object at organization, subject at bottom -> execute denied
	// even with the ACL mode.
	if err := f.srv.SetClassUnchecked("/svc/fs/read", f.org); err != nil {
		t.Fatal(err)
	}
	_, err := f.srv.CheckAccess(ext, f.bot, "/svc/fs/read", acl.Execute)
	if !errors.Is(err, ErrDenied) {
		t.Errorf("MAC execute: got %v, want ErrDenied", err)
	}
	var de *DeniedError
	if !errors.As(err, &de) || !strings.Contains(de.Why, "mac") {
		t.Errorf("denial must cite mac: %v", err)
	}
}

func TestUnbind(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	// Not empty.
	if err := f.srv.UnbindUnchecked("/svc"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("unbind non-empty: got %v, want ErrNotEmpty", err)
	}
	// Root.
	if err := f.srv.UnbindUnchecked("/"); !errors.Is(err, ErrRoot) {
		t.Errorf("unbind root: got %v, want ErrRoot", err)
	}
	// Checked requires delete on node + write on parent.
	alice := subj("alice")
	if err := f.srv.Unbind(alice, f.bot, "/svc/fs/read"); !errors.Is(err, ErrDenied) {
		t.Errorf("unauthorized unbind: got %v, want ErrDenied", err)
	}
	if err := f.srv.SetACLUnchecked("/svc/fs/read", acl.New(acl.Allow("alice", acl.Delete))); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Unbind(alice, f.bot, "/svc/fs/read"); !errors.Is(err, ErrDenied) {
		t.Errorf("unbind without parent write: got %v, want ErrDenied", err)
	}
	if err := f.srv.SetACLUnchecked("/svc/fs", acl.New(acl.Allow("alice", acl.Write|acl.List))); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Unbind(alice, f.bot, "/svc/fs/read"); err != nil {
		t.Fatalf("authorized unbind: %v", err)
	}
	if _, err := f.srv.ResolveUnchecked("/svc/fs/read"); !errors.Is(err, ErrNotFound) {
		t.Errorf("node must be gone: %v", err)
	}
}

func TestACLOps(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	alice := subj("alice")
	// GetACL requires read or administrate.
	if _, err := f.srv.GetACL(alice, f.top, "/svc/fs/read"); !errors.Is(err, ErrDenied) {
		t.Errorf("GetACL unauthorized: got %v, want ErrDenied", err)
	}
	if err := f.srv.SetACLUnchecked("/svc/fs/read",
		acl.New(acl.Allow("alice", acl.Read))); err != nil {
		t.Fatal(err)
	}
	got, err := f.srv.GetACL(alice, f.top, "/svc/fs/read")
	if err != nil {
		t.Fatalf("GetACL with read: %v", err)
	}
	if got.Len() != 1 {
		t.Errorf("GetACL = %v", got)
	}
	// SetACL requires administrate.
	if err := f.srv.SetACL(alice, f.bot, "/svc/fs/read", acl.New()); !errors.Is(err, ErrDenied) {
		t.Errorf("SetACL without administrate: got %v, want ErrDenied", err)
	}
	if err := f.srv.SetACLUnchecked("/svc/fs/read",
		acl.New(acl.Allow("alice", acl.Administrate))); err != nil {
		t.Fatal(err)
	}
	newACL := acl.New(acl.Allow("bob", acl.Execute))
	if err := f.srv.SetACL(alice, f.bot, "/svc/fs/read", newACL); err != nil {
		t.Fatalf("SetACL authorized: %v", err)
	}
	back, _ := f.srv.ACLOf("/svc/fs/read")
	if back.String() != newACL.String() {
		t.Errorf("ACL not replaced: %v", back)
	}
	// GetACL via administrate (alice lost read but kept nothing now).
	if _, err := f.srv.GetACL(alice, f.top, "/svc/fs/read"); !errors.Is(err, ErrDenied) {
		t.Errorf("GetACL after replace: got %v, want ErrDenied", err)
	}
}

func TestSetClass(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	alice := subj("alice")
	if err := f.srv.SetACLUnchecked("/svc/fs/read",
		acl.New(acl.Allow("alice", acl.Administrate))); err != nil {
		t.Fatal(err)
	}
	// Relabel up from bot as a bot subject: allowed (write up).
	if err := f.srv.SetClass(alice, f.bot, "/svc/fs/read", f.org); err != nil {
		t.Fatalf("relabel up: %v", err)
	}
	n, _ := f.srv.ResolveUnchecked("/svc/fs/read")
	if !n.Class().Equal(f.org) {
		t.Errorf("class = %v", n.Class())
	}
	// Now alice at bot cannot administrate an org node (MAC write ok --
	// org dominates bot -- but administrate needs write which is fine;
	// the relabel *down* must fail).
	if err := f.srv.SetClass(alice, f.bot, "/svc/fs/read", f.bot); !errors.Is(err, ErrDenied) {
		t.Errorf("relabel down: got %v, want ErrDenied", err)
	}
	// Foreign class rejected.
	other, _ := lattice.NewWithUniverse([]string{"x"}, nil)
	if err := f.srv.SetClass(alice, f.bot, "/svc/fs/read", other.MustClass("x")); err == nil {
		t.Error("foreign class relabel must fail")
	}
}

func TestWalkAndSize(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	var paths []string
	f.srv.Walk(func(p string, n *Node) { paths = append(paths, p) })
	want := []string{"/", "/svc", "/svc/fs", "/svc/fs/read"}
	if len(paths) != len(want) {
		t.Fatalf("Walk = %v", paths)
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Errorf("Walk[%d] = %q, want %q", i, paths[i], want[i])
		}
	}
	if f.srv.Size() != 4 {
		t.Errorf("Size = %d", f.srv.Size())
	}
}

func TestSetPayload(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	if err := f.srv.SetPayload("/svc/fs/read", 42); err != nil {
		t.Fatal(err)
	}
	n, _ := f.srv.ResolveUnchecked("/svc/fs/read")
	if n.Payload() != 42 {
		t.Errorf("Payload = %v", n.Payload())
	}
	if err := f.srv.SetPayload("/nope", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("SetPayload missing: %v", err)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if strings.Contains(k.String(), "Kind(") {
			t.Errorf("kind %d missing name", k)
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("unknown kind must render numerically")
	}
	if !KindMethod.Leaf() || !KindFile.Leaf() || KindDomain.Leaf() || KindDirectory.Leaf() {
		t.Error("Leaf classification wrong")
	}
}

func TestDeniedErrorRendering(t *testing.T) {
	e := &DeniedError{Path: "/x", Op: "execute", Why: "acl: modes not granted"}
	if !errors.Is(e, ErrDenied) {
		t.Error("DeniedError must wrap ErrDenied")
	}
	for _, want := range []string{"/x", "execute", "acl"} {
		if !strings.Contains(e.Error(), want) {
			t.Errorf("error %q missing %q", e.Error(), want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_, _ = f.srv.Resolve(f.root, f.top, "/svc/fs/read")
				_, _ = f.srv.List(f.root, f.top, "/svc")
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				name := "n" + string(rune('a'+i)) + string(rune('a'+j%26))
				_, _ = f.srv.BindUnchecked("/svc", BindSpec{
					Name: name, Kind: KindObject, Class: f.bot,
				})
				_ = f.srv.UnbindUnchecked("/svc/" + name)
			}
		}(i)
	}
	wg.Wait()
}
