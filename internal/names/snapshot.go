package names

// This file holds the copy-on-write tree machinery behind epoch
// publication: spine cloning, rebinding, and subtree relocation. The
// pinned-version type itself is Epoch (see epoch.go); the PR-4 name
// Snapshot survives as an alias for it.

// clone returns a shallow copy of n. The copy shares the children
// slice, ACL, class, payload, and grandchildren with the original —
// all immutable or replaced wholesale by rebind, which installs a
// fresh slice at the one level it edits — so cloning a spine level is
// a single Node allocation.
func (n *Node) clone() *Node {
	c := *n
	return &c
}

// rebind returns a new tree equal to root except that the binding at
// parts is replaced by repl; a nil repl removes the binding. Only the
// spine from the root to the target is cloned — every untouched
// subtree (and every untouched sibling ref within the cloned levels)
// is shared with the old tree; each cloned level costs one Node plus
// one exact-size children slice. With empty parts the replacement IS
// the new root. The caller guarantees every interior component of
// parts exists (the final one need not: that is how new bindings are
// inserted).
func rebind(root *Node, parts []string, repl *Node) *Node {
	if len(parts) == 0 {
		return repl
	}
	out := *root
	name := parts[0]
	if len(parts) == 1 {
		if repl == nil {
			out.children = withoutChild(root.children, name)
		} else {
			out.children = withChild(root.children, name, repl)
		}
		return &out
	}
	out.children = withChild(root.children, name, rebind(root.child(name), parts[1:], repl))
	return &out
}

// relocate deep-copies the subtree rooted at n under a new absolute
// path, rewriting the stored path of every descendant. Rename pays
// this O(subtree) copy so published nodes never change: a reader
// holding the pre-rename epoch keeps seeing the old paths. The fresh
// paths go through the server's interner (a rename round-trip re-keys
// onto the original allocations) and each node's name is carved out of
// its interned path, so the copy duplicates no component strings.
func relocate(n *Node, path string, in *interner) *Node {
	c := *n
	c.path = in.intern(path)
	if len(n.children) > 0 {
		kids := make([]childRef, len(n.children))
		for i, cr := range n.children {
			child := relocate(cr.node, Join(path, cr.name()), in)
			kids[i] = childRef{node: child}
		}
		c.children = kids
	}
	return &c
}
