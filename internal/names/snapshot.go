package names

// This file holds the copy-on-write tree machinery behind epoch
// publication: spine cloning, rebinding, and subtree relocation. The
// pinned-version type itself is Epoch (see epoch.go); the PR-4 name
// Snapshot survives as an alias for it.

// clone returns a shallow copy of n with its own children map. The
// copy shares the ACL, class, payload, and grandchildren — which are
// immutable or replaced wholesale — so cloning a spine is O(children
// per level), not O(subtree).
func (n *Node) clone() *Node {
	c := *n
	if n.children != nil {
		c.children = make(map[string]*Node, len(n.children))
		for k, v := range n.children {
			c.children[k] = v
		}
	}
	return &c
}

// rebind returns a new tree equal to root except that the binding at
// parts is replaced by repl; a nil repl removes the binding. Only the
// spine from the root to the target is cloned — every untouched
// subtree is shared with the old tree. With empty parts the
// replacement IS the new root. The caller guarantees every interior
// component of parts exists (the final one need not: that is how new
// bindings are inserted).
func rebind(root *Node, parts []string, repl *Node) *Node {
	if len(parts) == 0 {
		return repl
	}
	out := root.clone()
	name := parts[0]
	if len(parts) == 1 {
		if repl == nil {
			delete(out.children, name)
		} else {
			out.children[name] = repl
		}
		return out
	}
	out.children[name] = rebind(root.children[name], parts[1:], repl)
	return out
}

// relocate deep-copies the subtree rooted at n under a new name and
// absolute path, rewriting the stored path of every descendant.
// Rename pays this O(subtree) copy so published nodes never change: a
// reader holding the pre-rename epoch keeps seeing the old paths.
func relocate(n *Node, name, path string) *Node {
	c := *n
	c.name = name
	c.path = path
	if n.children != nil {
		c.children = make(map[string]*Node, len(n.children))
		for k, v := range n.children {
			c.children[k] = relocate(v, k, Join(path, k))
		}
	}
	return &c
}
