package names

// Snapshot is one immutable, fully consistent version of the name
// space. The server publishes snapshots through a single atomic root
// pointer (RCU style): readers pin one with a single atomic load and
// traverse it with zero locks; writers clone the spine from the root
// to their change under a writer-only mutex and publish a successor.
//
// A pinned snapshot guarantees:
//
//   - Every node reachable from it is frozen: name, path, kind, ACL,
//     class, payload reference, multilevel flag, and child map never
//     change. Concurrent mutations build new trees; they cannot touch
//     this one.
//   - The tree is internally consistent: a path either resolves fully
//     in this version of the space or not at all. A rename concurrent
//     with resolution is invisible — the walk sees the wholly-old or
//     the wholly-new tree, never a torn mix.
//   - Version() is the decision-cache generation for every verdict
//     computed against this snapshot. Versions are strictly monotonic
//     across publishes, so an entry stamped with an older version can
//     never be served after the state moved on.
//
// Payloads are shared across snapshots by reference: a file's data
// handle is the same object in every snapshot that contains the file,
// so the data plane (which does its own locking) is not copied, only
// the protection state is.
type Snapshot struct {
	root    *Node
	version uint64
	// traversal controls whether checked resolution performs per-level
	// visibility checks. It lives in the snapshot so toggling it
	// publishes a new version and invalidates cached decisions.
	traversal bool
}

// Version returns the snapshot's version number: the unified
// protection-state generation used by the decision cache.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Root returns the snapshot's root node.
func (sn *Snapshot) Root() *Node { return sn.root }

// Walk visits every node in the snapshot in depth-first order with no
// access checks, calling fn with each node's path and node. Iteration
// is deterministic: children are visited in lexicographic name order,
// so two walks of equal snapshots produce identical sequences. No lock
// is held while fn runs — fn may call back into the Server freely; it
// keeps observing this snapshot regardless of concurrent mutations.
func (sn *Snapshot) Walk(fn func(path string, n *Node)) {
	var visit func(n *Node)
	visit = func(n *Node) {
		fn(n.path, n)
		for _, name := range n.childNames() {
			visit(n.children[name])
		}
	}
	visit(sn.root)
}

// Size returns the number of nodes in the snapshot, including the
// root.
func (sn *Snapshot) Size() int {
	n := 0
	sn.Walk(func(string, *Node) { n++ })
	return n
}

// clone returns a shallow copy of n with its own children map. The
// copy shares the ACL, class, payload, and grandchildren — which are
// immutable or replaced wholesale — so cloning a spine is O(children
// per level), not O(subtree).
func (n *Node) clone() *Node {
	c := *n
	if n.children != nil {
		c.children = make(map[string]*Node, len(n.children))
		for k, v := range n.children {
			c.children[k] = v
		}
	}
	return &c
}

// rebind returns a new tree equal to root except that the binding at
// parts is replaced by repl; a nil repl removes the binding. Only the
// spine from the root to the target is cloned — every untouched
// subtree is shared with the old tree. With empty parts the
// replacement IS the new root. The caller guarantees every interior
// component of parts exists (the final one need not: that is how new
// bindings are inserted).
func rebind(root *Node, parts []string, repl *Node) *Node {
	if len(parts) == 0 {
		return repl
	}
	out := root.clone()
	name := parts[0]
	if len(parts) == 1 {
		if repl == nil {
			delete(out.children, name)
		} else {
			out.children[name] = repl
		}
		return out
	}
	out.children[name] = rebind(root.children[name], parts[1:], repl)
	return out
}

// relocate deep-copies the subtree rooted at n under a new name and
// absolute path, rewriting the stored path of every descendant.
// Rename pays this O(subtree) copy so published nodes never change: a
// reader holding the pre-rename snapshot keeps seeing the old paths.
func relocate(n *Node, name, path string) *Node {
	c := *n
	c.name = name
	c.path = path
	if n.children != nil {
		c.children = make(map[string]*Node, len(n.children))
		for k, v := range n.children {
			c.children[k] = relocate(v, k, Join(path, k))
		}
	}
	return &c
}
