package names

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"secext/internal/acl"
	"secext/internal/decision"
	"secext/internal/lattice"
	"secext/internal/monitor"
	"secext/internal/telemetry"
)

// TestWalkDeterministic: Walk must visit children in lexicographic name
// order, so two walks of the same tree produce identical sequences.
func TestWalkDeterministic(t *testing.T) {
	f := newFixture(t)
	open := acl.New(acl.AllowEveryone(acl.AllModes))
	// Bind in non-sorted order on purpose.
	for _, name := range []string{"zeta", "alpha", "mu", "beta"} {
		if _, err := f.srv.BindUnchecked("/", BindSpec{Name: name, Kind: KindDomain, ACL: open, Class: f.bot}); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"y", "x"} {
		if _, err := f.srv.BindUnchecked("/mu", BindSpec{Name: name, Kind: KindFile, ACL: open, Class: f.bot}); err != nil {
			t.Fatal(err)
		}
	}
	walk := func() []string {
		var out []string
		f.srv.Walk(func(p string, n *Node) { out = append(out, p) })
		return out
	}
	first := walk()
	want := []string{"/", "/alpha", "/beta", "/mu", "/mu/x", "/mu/y", "/zeta"}
	if strings.Join(first, " ") != strings.Join(want, " ") {
		t.Fatalf("Walk order = %v, want %v", first, want)
	}
	for i := 0; i < 10; i++ {
		if again := walk(); strings.Join(again, " ") != strings.Join(first, " ") {
			t.Fatalf("Walk not deterministic: %v vs %v", again, first)
		}
	}
}

// TestWalkReentrantCallback: Walk holds no lock while fn runs, so a
// callback may re-enter the server — reads AND mutations — without
// deadlocking, and the walk keeps observing the snapshot pinned when it
// started.
func TestWalkReentrantCallback(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	sizeBefore := f.srv.Size()
	visited := 0
	f.srv.Walk(func(p string, n *Node) {
		visited++
		// Re-enter a read: this deadlocked when Walk held the RWMutex.
		got, err := f.srv.ResolveUnchecked(p)
		if err != nil {
			t.Fatalf("Resolve(%s) from inside Walk: %v", p, err)
		}
		if got.Path() != p {
			t.Fatalf("Resolve(%s) from inside Walk returned %s", p, got.Path())
		}
		if _, err := f.srv.Resolve(f.root, f.top, p); err != nil {
			t.Fatalf("checked Resolve(%s) from inside Walk: %v", p, err)
		}
		// Re-enter a mutation: the walk must not see the new node (it
		// observes the pinned snapshot), and nothing may deadlock.
		if p == "/" {
			if _, err := f.srv.BindUnchecked("/", BindSpec{
				Name: "from-inside-walk", Kind: KindFile,
				ACL: acl.New(), Class: f.bot,
			}); err != nil {
				t.Fatalf("Bind from inside Walk: %v", err)
			}
		}
		if n.Name() == "from-inside-walk" {
			t.Fatal("Walk observed a node bound after the walk started")
		}
	})
	if visited != sizeBefore {
		t.Fatalf("visited %d nodes, want %d", visited, sizeBefore)
	}
	if _, err := f.srv.ResolveUnchecked("/from-inside-walk"); err != nil {
		t.Fatalf("node bound from inside Walk not visible afterwards: %v", err)
	}
}

// TestAdminHookReentry: the admin hook runs after the writer publishes,
// with no lock held, so a hook that calls back into the server (the
// natural way to inspect what an unchecked operation did) must not
// deadlock — and must observe the post-operation state.
func TestAdminHookReentry(t *testing.T) {
	f := newFixture(t)
	var observed atomic.Int32
	f.srv.SetAdminHook(func(op, path string, err error) {
		// The hook fires for resolve-unchecked too; react only to binds
		// so the re-entrant resolve below doesn't recurse forever.
		if op != "bind-unchecked" || err != nil {
			return
		}
		n, rerr := f.srv.ResolveUnchecked(path)
		if rerr != nil {
			t.Errorf("hook: ResolveUnchecked(%s) after publish: %v", path, rerr)
			return
		}
		if n.Path() != path {
			t.Errorf("hook: resolved %s, want %s", n.Path(), path)
			return
		}
		observed.Add(1)
	})
	if _, err := f.srv.BindUnchecked("/", BindSpec{
		Name: "hooked", Kind: KindFile, ACL: acl.New(), Class: f.bot,
	}); err != nil {
		t.Fatal(err)
	}
	if observed.Load() != 1 {
		t.Fatalf("hook observed %d binds, want 1", observed.Load())
	}
}

// TestSnapshotPinning: a pinned snapshot is immutable — mutations
// publish successors with strictly increasing versions and never touch
// pinned state.
func TestSnapshotPinning(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	grant := acl.New(acl.Allow("alice", acl.Read), acl.AllowEveryone(acl.List))
	if err := f.srv.SetACLUnchecked("/svc/fs/read", grant); err != nil {
		t.Fatal(err)
	}

	sn := f.srv.Current()
	v0 := sn.Version()
	pubs0 := f.srv.Publishes()

	// A decision computed against the pinned snapshot grants.
	if _, err := f.srv.CheckAccessIn(sn, subj("alice"), f.bot, "/svc/fs/read", acl.Read); err != nil {
		t.Fatalf("pinned check before revocation: %v", err)
	}

	// Revoke, rebind, rename — the world moves on.
	if err := f.srv.SetACLUnchecked("/svc/fs/read", acl.New()); err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.BindUnchecked("/svc", BindSpec{Name: "new", Kind: KindFile, ACL: acl.New(), Class: f.bot}); err != nil {
		t.Fatal(err)
	}
	if err := f.srv.Rename(f.root, f.bot, "/svc/fs", "/", "fs2"); err != nil {
		t.Fatal(err)
	}

	// The pinned snapshot still shows the old world, internally
	// consistent: old path resolves, old ACL grants, new node absent.
	if _, err := f.srv.CheckAccessIn(sn, subj("alice"), f.bot, "/svc/fs/read", acl.Read); err != nil {
		t.Fatalf("pinned snapshot's decision changed after mutations: %v", err)
	}
	if _, err := resolveIn(sn, nil, lattice.Class{}, "/svc/new", false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pinned snapshot sees a node bound later: %v", err)
	}
	if _, err := resolveIn(sn, nil, lattice.Class{}, "/fs2/read", false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pinned snapshot sees a post-pin rename: %v", err)
	}

	// The current snapshot shows the new world.
	cur := f.srv.Current()
	if cur.Version() <= v0 {
		t.Fatalf("version not monotonic: %d -> %d", v0, cur.Version())
	}
	if f.srv.Publishes() != pubs0+3 {
		t.Fatalf("publishes = %d, want %d", f.srv.Publishes(), pubs0+3)
	}
	if _, err := f.srv.CheckAccessIn(cur, subj("alice"), f.bot, "/fs2/read", acl.Read); !errors.Is(err, ErrDenied) {
		t.Fatalf("current snapshot must deny the revoked grant: %v", err)
	}
	if _, err := resolveIn(cur, nil, lattice.Class{}, "/fs2/read", false); err != nil {
		t.Fatalf("current snapshot missing renamed node: %v", err)
	}

	// A typed transition of a non-tree shard (here: a guard-stack
	// republish) bumps the version without changing the tree.
	v1 := f.srv.Version()
	f.srv.PublishStack(f.srv.Pipeline().Current())
	if f.srv.Version() != v1+1 {
		t.Fatalf("PublishStack: version %d -> %d, want +1", v1, f.srv.Version())
	}
}

// TestRenameConcurrentReaders is the torn-read check from the issue:
// while one goroutine renames a subtree back and forth (and throws
// structurally invalid renames at the server for good measure), readers
// resolving through the moved spine must see the wholly-old or the
// wholly-new path — within one pinned snapshot exactly one of the two
// names resolves, and it resolves to a complete, correctly-pathed node.
// Run with -race.
func TestRenameConcurrentReaders(t *testing.T) {
	f := newFixture(t)
	open := acl.New(acl.AllowEveryone(acl.AllModes))
	for _, b := range []struct {
		parent, name string
		kind         Kind
	}{
		{"/", "a", KindDomain},
		{"/", "z", KindDomain},
		{"/a", "b", KindInterface},
		{"/a/b", "c", KindMethod},
	} {
		spec := BindSpec{Name: b.name, Kind: b.kind, ACL: open, Class: f.bot}
		if b.kind == KindMethod {
			spec.Payload = "leaf"
		}
		if _, err := f.srv.BindUnchecked(b.parent, spec); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var renamer, readers sync.WaitGroup

	// The renamer moves /a/b <-> /z/b and keeps poking the structural
	// guards: moving a node under its own subtree and renaming the root
	// must fail identically under concurrency.
	renamer.Add(1)
	go func() {
		defer renamer.Done()
		at := "/a/b"
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if at == "/a/b" {
				err = f.srv.Rename(f.root, f.bot, "/a/b", "/z", "b")
				at = "/z/b"
			} else {
				err = f.srv.Rename(f.root, f.bot, "/z/b", "/a", "b")
				at = "/a/b"
			}
			if err != nil {
				t.Errorf("rename flip: %v", err)
				return
			}
			if i%16 == 0 {
				if err := f.srv.Rename(f.root, f.bot, at, at, "self"); !errors.Is(err, ErrBadPath) {
					t.Errorf("move-into-own-subtree: got %v, want ErrBadPath", err)
					return
				}
				if err := f.srv.Rename(f.root, f.bot, "/", "/z", "root"); !errors.Is(err, ErrRoot) {
					t.Errorf("root rename: got %v, want ErrRoot", err)
					return
				}
			}
		}
	}()

	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 3000; i++ {
				sn := f.srv.Current()
				old, errOld := resolveIn(sn, nil, lattice.Class{}, "/a/b/c", false)
				new_, errNew := resolveIn(sn, nil, lattice.Class{}, "/z/b/c", false)
				switch {
				case errOld == nil && errNew == nil:
					t.Error("torn read: subtree visible under both names in one snapshot")
					return
				case errOld != nil && errNew != nil:
					t.Errorf("torn read: subtree visible under neither name (%v / %v)", errOld, errNew)
					return
				}
				n, path := old, "/a/b/c"
				if errOld != nil {
					n, path = new_, "/z/b/c"
				}
				if n.Path() != path || n.Payload() != "leaf" {
					t.Errorf("reader saw torn node: path %q payload %v at %q", n.Path(), n.Payload(), path)
					return
				}
			}
		}()
	}

	// Readers run bounded loops; keep the renamer flipping until every
	// reader has finished its iterations, then shut it down.
	readers.Wait()
	close(stop)
	renamer.Wait()
}

// TestStressSnapshotConsistency is the acceptance-criterion stress run:
// concurrent readers + mutators (Bind/Unbind/Rename/SetACL), every read
// decision computed against exactly one pinned snapshot version, and no
// stale grant after a revoking SetACL. Run with -race.
func TestStressSnapshotConsistency(t *testing.T) {
	f := newFixture(t)
	open := acl.New(acl.AllowEveryone(acl.AllModes))
	grant := acl.New(acl.Allow("alice", acl.Read), acl.AllowEveryone(acl.List))
	for _, b := range []struct {
		parent, name string
		kind         Kind
	}{
		{"/", "d", KindDirectory},
		{"/", "m1", KindDirectory},
		{"/", "m2", KindDirectory},
		{"/", "spare", KindDirectory},
	} {
		if _, err := f.srv.BindUnchecked(b.parent, BindSpec{Name: b.name, Kind: b.kind, ACL: open, Class: f.bot}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.srv.BindUnchecked("/d", BindSpec{Name: "f", Kind: KindFile, ACL: grant, Class: f.bot, Payload: "data"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.BindUnchecked("/m1", BindSpec{Name: "sub", Kind: KindDirectory, ACL: open, Class: f.bot}); err != nil {
		t.Fatal(err)
	}

	// revokedAt is the snapshot version observed AFTER the revoking
	// SetACL published: any decision pinned at or past it must deny.
	var revokedAt atomic.Uint64
	var wg sync.WaitGroup

	// Readers: pin one snapshot per decision and check alice's read.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deniedOnce := false
			for i := 0; i < 4000; i++ {
				sn := f.srv.Current()
				n, err := f.srv.CheckAccessIn(sn, subj("alice"), f.bot, "/d/f", acl.Read)
				switch {
				case err == nil:
					if n.Path() != "/d/f" || n.Payload() != "data" {
						t.Errorf("granted node torn: path %q payload %v", n.Path(), n.Payload())
						return
					}
					if deniedOnce {
						t.Error("grant served after a denial: revocation went backwards")
						return
					}
					if vr := revokedAt.Load(); vr != 0 && sn.Version() >= vr {
						t.Errorf("stale grant: snapshot v%d at/after revocation v%d", sn.Version(), vr)
						return
					}
				case errors.Is(err, ErrDenied):
					deniedOnce = true
				default:
					t.Errorf("reader: unexpected error %v", err)
					return
				}
			}
		}()
	}

	// Binder: churn /spare with bind/unbind pairs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1500; i++ {
			if _, err := f.srv.BindUnchecked("/spare", BindSpec{Name: "tmp", Kind: KindFile, ACL: open, Class: f.bot}); err != nil {
				t.Errorf("binder: %v", err)
				return
			}
			if err := f.srv.UnbindUnchecked("/spare/tmp"); err != nil {
				t.Errorf("binder unbind: %v", err)
				return
			}
		}
	}()

	// Renamer: flip /m1/sub <-> /m2/sub.
	wg.Add(1)
	go func() {
		defer wg.Done()
		at := "/m1/sub"
		for i := 0; i < 1500; i++ {
			to, dst := "/m2", "/m2/sub"
			if at == "/m2/sub" {
				to, dst = "/m1", "/m1/sub"
			}
			if err := f.srv.Rename(f.root, f.bot, at, to, "sub"); err != nil {
				t.Errorf("renamer: %v", err)
				return
			}
			at = dst
		}
	}()

	// Revoker: let the readers warm up on grants, then revoke once.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for f.srv.Publishes() < 200 { // let some churn happen first
		}
		if err := f.srv.SetACLUnchecked("/d/f", acl.New(acl.AllowEveryone(acl.List))); err != nil {
			t.Errorf("revoker: %v", err)
			return
		}
		// Version() now is >= the revocation's publish version.
		revokedAt.Store(f.srv.Version())
	}()

	wg.Wait()

	// After the dust settles: the current snapshot must deny, forever.
	if _, err := f.srv.CheckAccessIn(f.srv.Current(), subj("alice"), f.bot, "/d/f", acl.Read); !errors.Is(err, ErrDenied) {
		t.Fatalf("post-stress check: %v, want denial", err)
	}
}

// statefulGuard makes a pipeline non-cacheable (monitor.Stateful).
type statefulGuard struct{}

func (statefulGuard) Name() string                          { return "stateful-test" }
func (statefulGuard) Check(monitor.Request) monitor.Verdict { return monitor.Verdict{Allow: true} }
func (statefulGuard) Stateful() bool                        { return true }

// TestCheckAccessCachedPath exercises the decision-cache fast path
// against the snapshot clock: miss, hit, version-advance miss, cached
// denial, and the stateful-pipeline bypass.
func TestCheckAccessCachedPath(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	grant := acl.New(acl.Allow("alice", acl.Read), acl.AllowEveryone(acl.List))
	if err := f.srv.SetACLUnchecked("/svc/fs/read", grant); err != nil {
		t.Fatal(err)
	}
	cache := decision.NewCache(0)
	f.srv.SetDecisionCache(cache)
	if f.srv.DecisionCache() != cache {
		t.Fatal("DecisionCache accessor mismatch")
	}
	if f.srv.Lattice() != f.lat {
		t.Fatal("Lattice accessor mismatch")
	}
	if f.srv.Pipeline() == nil {
		t.Fatal("Pipeline accessor returned nil")
	}

	alice := subj("alice")
	if _, err := f.srv.CheckAccess(alice, f.bot, "/svc/fs/read", acl.Read); err != nil {
		t.Fatalf("first (miss) check: %v", err)
	}
	if _, err := f.srv.CheckAccess(alice, f.bot, "/svc/fs/read", acl.Read); err != nil {
		t.Fatalf("second (hit) check: %v", err)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Stores != 1 {
		t.Fatalf("cache stats after warm pair: %+v", st)
	}
	// Node.ACL returns a detached copy.
	n, _ := f.srv.ResolveUnchecked("/svc/fs/read")
	a := n.ACL()
	a.Add(acl.Allow("mallory", acl.AllModes))
	if _, err := f.srv.CheckAccess(subj("mallory"), f.bot, "/svc/fs/read", acl.Write); !errors.Is(err, ErrDenied) {
		t.Fatalf("editing a returned ACL copy changed protection: %v", err)
	}

	// A mutation advances the version; the next check misses, recomputes
	// against the new snapshot, and denies.
	if err := f.srv.SetACLUnchecked("/svc/fs/read", acl.New(acl.AllowEveryone(acl.List))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.CheckAccess(alice, f.bot, "/svc/fs/read", acl.Read); !errors.Is(err, ErrDenied) {
		t.Fatalf("post-revocation check: %v", err)
	}
	// The denial itself is cached; a repeat is a hit with the same error.
	hits := cache.Stats().Hits
	if _, err := f.srv.CheckAccess(alice, f.bot, "/svc/fs/read", acl.Read); !errors.Is(err, ErrDenied) {
		t.Fatalf("cached denial: %v", err)
	}
	if cache.Stats().Hits != hits+1 {
		t.Fatal("denial was not served from cache")
	}
	// Structural errors are not cached.
	stores := cache.Stats().Stores
	if _, err := f.srv.CheckAccess(alice, f.bot, "/svc/fs/missing", acl.Read); !errors.Is(err, ErrNotFound) {
		t.Fatalf("structural error: %v", err)
	}
	if cache.Stats().Stores != stores {
		t.Fatal("structural error was cached")
	}

	// A stateful guard in the pipeline bypasses the cache entirely.
	f.srv.SetPipeline(monitor.NewPipeline(statefulGuard{}))
	misses := cache.Stats().Misses
	if _, err := f.srv.CheckAccess(alice, f.bot, "/svc/fs/read", acl.Read); err != nil {
		t.Fatalf("stateful-pipeline check: %v", err)
	}
	if cache.Stats().Misses != misses {
		t.Fatal("stateful pipeline consulted the cache")
	}
	// Snapshot.Root is the tree the walk starts from.
	if f.srv.Current().Root().Path() != "/" {
		t.Fatal("Snapshot.Root is not the root node")
	}
	// Removing the hook is a supported no-op afterwards.
	f.srv.SetAdminHook(nil)
	if _, err := f.srv.ResolveUnchecked("/svc"); err != nil {
		t.Fatal(err)
	}
}

// TestCheckAccessTraced: the traced check must return the identical
// decision and record the snapshot version, cache probe, and resolve
// spans — on the miss path, the hit path, and the uncached path.
func TestCheckAccessTraced(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	grant := acl.New(acl.Allow("alice", acl.Read), acl.AllowEveryone(acl.List))
	if err := f.srv.SetACLUnchecked("/svc/fs/read", grant); err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(telemetry.Options{Mode: telemetry.ModeFull, Kinds: []string{"data"}})
	alice := subj("alice")

	trace := func(wantErr bool) {
		t.Helper()
		tr := tel.StartTrace("data", "alice", "/svc/fs/read", "r")
		if tr == nil {
			t.Fatal("ModeFull sampler returned nil trace")
		}
		_, err := f.srv.CheckAccessTraced(alice, f.bot, "/svc/fs/read", acl.Read, tr)
		tr.Finish(0, err == nil, "")
		if (err != nil) != wantErr {
			t.Fatalf("traced check err = %v, wantErr %v", err, wantErr)
		}
	}

	// Uncached (no decision cache installed): resolve + guard spans.
	trace(false)
	// Cached: miss then hit.
	f.srv.SetDecisionCache(decision.NewCache(0))
	trace(false)
	trace(false)
	// Denial on the traced path.
	if err := f.srv.SetACLUnchecked("/svc/fs/read", acl.New(acl.AllowEveryone(acl.List))); err != nil {
		t.Fatal(err)
	}
	trace(true)
	trace(true) // cached denial via the traced hit path
	// Stateful pipeline: traced cache-skip span.
	f.srv.SetPipeline(monitor.NewPipeline(statefulGuard{}))
	trace(false)

	recent := tel.Recent(0, false)
	if len(recent) != 6 {
		t.Fatalf("trace count = %d, want 6", len(recent))
	}
	// Every trace carries the pinned snapshot-version span first.
	for _, tr := range recent {
		if len(tr.Spans) == 0 || tr.Spans[0].Name != "epoch" {
			t.Fatalf("trace %d missing epoch span: %+v", tr.ID, tr.Spans)
		}
	}
}
