package names

// Epoch wire codec: the replication unit of ROADMAP item 2.
//
// Epochs are immutable, versioned, and atomically published, which
// makes them the natural unit to stream to replica mediators: a full
// snapshot describes one epoch completely (tree, frozen lattice,
// frozen registry, guard-stack descriptor), and a delta describes the
// exact edit set that carried epoch v to epoch v+1 — derived by
// structural diff over the two immutable trees, which is cheap because
// the batch publisher shares every untouched subtree between parent
// and successor (pointer equality prunes the walk to the changed
// spine).
//
// The codec deliberately serializes *protection state only*. Payloads
// (service implementations, file handles) are data plane and never
// cross the wire: a replica answers access checks against the
// replicated policy, it does not serve the primary's data. Classes
// travel as labels and are re-parsed against the receiver's lattice;
// ACLs travel in their textual form (acl.String / acl.Parse round-trip
// exactly); guard stacks travel as ordered guard names and are rebuilt
// from registered constructors on the replica, so a stack containing
// an unknown or stateful guard fails the subscription instead of
// silently weakening policy.

import (
	"fmt"
	"sort"

	"secext/internal/acl"
	"secext/internal/lattice"
	"secext/internal/monitor"
)

// NodeWire is one name-space node in transit: its canonical path, kind,
// class label, textual ACL, and multilevel flag. Payloads do not
// replicate (see the package comment above).
type NodeWire struct {
	Path       string `json:"path"`
	Kind       uint8  `json:"kind"`
	Class      string `json:"class"`
	ACL        string `json:"acl"`
	Multilevel bool   `json:"ml,omitempty"`
}

// PrincipalWire is one registered principal. Principals are listed in
// dense-ID order so a replica replaying them assigns identical IDs —
// the compiled bitsets it rebuilds locally then index the same way the
// primary's do.
type PrincipalWire struct {
	Name  string `json:"name"`
	Class string `json:"class"`
}

// GroupWire is one group with its full direct-member list, in
// principal.Frozen.Members form (subgroups are "@"-prefixed). Deltas
// carry changed groups wholesale: direct-member lists are small and a
// full list makes the apply idempotent.
type GroupWire struct {
	Name    string   `json:"name"`
	Members []string `json:"members"`
}

// EpochWire is a full epoch snapshot: everything a replica needs to
// rebuild the policy from nothing. Nodes are in depth-first pre-order
// (the Walk order), so every parent precedes its children.
type EpochWire struct {
	Version    uint64          `json:"version"`
	Traversal  bool            `json:"traversal"`
	Levels     []string        `json:"levels"`
	Categories []string        `json:"categories"`
	Principals []PrincipalWire `json:"principals"`
	Groups     []GroupWire     `json:"groups"`
	Stack      []string        `json:"stack"`
	Nodes      []NodeWire      `json:"nodes"`
}

// EpochDelta is the edit set carrying epoch From to epoch Version. The
// lattice and registry shards are append-only (no level, category,
// principal, or group is ever removed), so their deltas are pure
// additions plus changed-group member lists; the tree delta is upserts
// (pre-order: parents before children) and subtree deletes. A nil
// Stack means the guard stack did not change.
type EpochDelta struct {
	From      uint64 `json:"from"`
	Version   uint64 `json:"version"`
	Traversal bool   `json:"traversal"`

	Levels     []string        `json:"levels,omitempty"`
	Categories []string        `json:"categories,omitempty"`
	Principals []PrincipalWire `json:"principals,omitempty"`
	Groups     []GroupWire     `json:"groups,omitempty"`
	Stack      []string        `json:"stack,omitempty"`

	Upserts []NodeWire `json:"upserts,omitempty"`
	Deletes []string   `json:"deletes,omitempty"`
}

// encodeNode renders one node for the wire, formatting its class
// against the epoch's own frozen lattice.
func encodeNode(n *Node, lat *lattice.Frozen) (NodeWire, error) {
	label, err := lat.Format(*n.class)
	if err != nil {
		return NodeWire{}, fmt.Errorf("names: wire-encode %s: %w", n.path, err)
	}
	return NodeWire{
		Path:       n.path,
		Kind:       uint8(n.kind),
		Class:      label,
		ACL:        n.acl.String(),
		Multilevel: n.multilevel,
	}, nil
}

// decodeNode rebuilds a node from the wire against the receiver's
// frozen lattice. The node has no payload and no children (the patcher
// fills those in). The path is interned and the ACL canonicalized by
// the receiving server's tables, so a replica bootstrapping a
// million-node snapshot shares strings across re-bootstraps and ACL
// values across nodes exactly as the primary does; in is nil-safe and
// canon is nil-safe for contexts without a server.
func decodeNode(w NodeWire, lat *lattice.Frozen, in *interner, canon *aclCanon, classes *classCanon) (*Node, error) {
	if err := ValidPath(w.Path); err != nil {
		return nil, err
	}
	if w.Kind >= numKinds {
		return nil, fmt.Errorf("%w: wire node %s has unknown kind %d", ErrBadPath, w.Path, w.Kind)
	}
	kind := Kind(w.Kind)
	class, err := lat.ParseClass(w.Class)
	if err != nil {
		return nil, fmt.Errorf("names: wire-decode %s: %w", w.Path, err)
	}
	a, err := acl.Parse(w.ACL)
	if err != nil {
		return nil, fmt.Errorf("names: wire-decode %s: %w", w.Path, err)
	}
	path := in.intern(w.Path)
	n := &Node{
		path:       path,
		kind:       kind,
		acl:        canon.canon(a),
		class:      classes.canon(class),
		multilevel: w.Multilevel && !kind.Leaf(),
	}
	return n, nil
}

// registryWire flattens the epoch's frozen registry in dense-ID order.
func registryWire(ep *Epoch) ([]PrincipalWire, []GroupWire, error) {
	if ep.reg == nil {
		return nil, nil, nil
	}
	names := ep.reg.Principals()
	type idp struct {
		id   int
		name string
	}
	byID := make([]idp, 0, len(names))
	for _, name := range names {
		p, err := ep.reg.Principal(name)
		if err != nil {
			return nil, nil, err
		}
		byID = append(byID, idp{p.ID(), name})
	}
	sort.Slice(byID, func(i, j int) bool { return byID[i].id < byID[j].id })
	prins := make([]PrincipalWire, 0, len(byID))
	for _, e := range byID {
		p, err := ep.reg.Principal(e.name)
		if err != nil {
			return nil, nil, err
		}
		label, err := ep.lat.Format(p.Class())
		if err != nil {
			return nil, nil, fmt.Errorf("names: wire-encode principal %s: %w", e.name, err)
		}
		prins = append(prins, PrincipalWire{Name: e.name, Class: label})
	}
	var groups []GroupWire
	for _, g := range ep.reg.Groups() {
		members, err := ep.reg.Members(g)
		if err != nil {
			return nil, nil, err
		}
		groups = append(groups, GroupWire{Name: g, Members: members})
	}
	return prins, groups, nil
}

// WireSnapshot encodes the epoch as a full snapshot.
func (ep *Epoch) WireSnapshot() (*EpochWire, error) {
	w := &EpochWire{
		Version:    ep.version,
		Traversal:  ep.traversal,
		Levels:     ep.lat.Levels(),
		Categories: ep.lat.Categories(),
		Stack:      ep.stack.Guards(),
	}
	prins, groups, err := registryWire(ep)
	if err != nil {
		return nil, err
	}
	w.Principals, w.Groups = prins, groups
	var werr error
	ep.Walk(func(path string, n *Node) {
		if werr != nil {
			return
		}
		nw, err := encodeNode(n, ep.lat)
		if err != nil {
			werr = err
			return
		}
		w.Nodes = append(w.Nodes, nw)
	})
	if werr != nil {
		return nil, werr
	}
	return w, nil
}

// appendSuffix returns the entries of next beyond prev, verifying prev
// is a strict prefix (the shard is append-only; anything else means
// the two epochs do not share a history).
func appendSuffix(kind string, prev, next []string) ([]string, error) {
	if len(next) < len(prev) {
		return nil, fmt.Errorf("names: %s shard shrank between epochs", kind)
	}
	for i := range prev {
		if prev[i] != next[i] {
			return nil, fmt.Errorf("names: %s shard rewrote entry %d between epochs", kind, i)
		}
	}
	return next[len(prev):], nil
}

// sameStrings reports element-wise equality.
func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// contentDiffers reports whether two same-named nodes differ in
// protection-relevant content. Payloads are excluded (they do not
// replicate), and ACLs compare by pointer: spine clones share the ACL
// pointer, while every real ACL edit installs a fresh clone, so a
// pointer mismatch is exactly "this node's ACL was edited" (at worst a
// semantically equal re-install, which re-encodes harmlessly).
func contentDiffers(prev, next *Node) bool {
	return prev.kind != next.kind ||
		prev.multilevel != next.multilevel ||
		prev.acl != next.acl ||
		!prev.class.Equal(*next.class)
}

// upsertSubtree emits the whole subtree rooted at n, pre-order.
func upsertSubtree(n *Node, lat *lattice.Frozen, out *[]NodeWire) error {
	w, err := encodeNode(n, lat)
	if err != nil {
		return err
	}
	*out = append(*out, w)
	for _, cr := range n.children {
		if err := upsertSubtree(cr.node, lat, out); err != nil {
			return err
		}
	}
	return nil
}

// diffTree walks matched subtrees of the parent and successor epochs,
// emitting upserts and deletes. Pointer-equal subtrees are pruned —
// the batch publisher shares every untouched subtree, so the walk
// visits only the cloned spine plus the actual edits.
func diffTree(prev, next *Node, lat *lattice.Frozen, d *EpochDelta) error {
	if prev == next {
		return nil
	}
	if contentDiffers(prev, next) {
		w, err := encodeNode(next, lat)
		if err != nil {
			return err
		}
		d.Upserts = append(d.Upserts, w)
	}
	for _, cr := range next.children {
		pc := prev.child(cr.name())
		if pc == nil {
			if err := upsertSubtree(cr.node, lat, &d.Upserts); err != nil {
				return err
			}
			continue
		}
		if err := diffTree(pc, cr.node, lat, d); err != nil {
			return err
		}
	}
	for _, cr := range prev.children {
		if next.child(cr.name()) == nil {
			d.Deletes = append(d.Deletes, Join(next.path, cr.name()))
		}
	}
	return nil
}

// DiffEpochs derives the wire delta that carries prev to next. It is
// the encoding half of the replication contract: applying the decoded
// delta to a faithful copy of prev yields a policy equal to next
// (tree, lattice, registry, stack — payloads excepted), which
// FuzzEpochDeltaCodec proves by deep comparison. Both epochs must come
// from the same server history (next derived from prev by
// publications); diffing unrelated epochs fails on the append-only
// shard checks.
func DiffEpochs(prev, next *Epoch) (*EpochDelta, error) {
	if next.version < prev.version {
		return nil, fmt.Errorf("names: delta target v%d older than base v%d", next.version, prev.version)
	}
	d := &EpochDelta{From: prev.version, Version: next.version, Traversal: next.traversal}
	var err error
	if d.Levels, err = appendSuffix("lattice level", prev.lat.Levels(), next.lat.Levels()); err != nil {
		return nil, err
	}
	if d.Categories, err = appendSuffix("lattice category", prev.lat.Categories(), next.lat.Categories()); err != nil {
		return nil, err
	}
	if next.reg != nil {
		prins, groups, err := registryWire(next)
		if err != nil {
			return nil, err
		}
		for _, p := range prins {
			if prev.reg == nil || !prev.reg.HasPrincipal(p.Name) {
				d.Principals = append(d.Principals, p)
			}
		}
		for _, g := range groups {
			if prev.reg == nil || !prev.reg.HasGroup(g.Name) {
				d.Groups = append(d.Groups, g)
				continue
			}
			prevMembers, err := prev.reg.Members(g.Name)
			if err != nil {
				return nil, err
			}
			if !sameStrings(prevMembers, g.Members) {
				d.Groups = append(d.Groups, g)
			}
		}
	}
	if !sameStrings(prev.stack.Guards(), next.stack.Guards()) {
		d.Stack = next.stack.Guards()
	}
	if err := diffTree(prev.root, next.root, next.lat, d); err != nil {
		return nil, err
	}
	return d, nil
}

// lookupWire finds the node at path in a working (unpublished) tree,
// or nil. Used by the patcher only; it assumes a validated path.
func lookupWire(root *Node, path string) *Node {
	if path == "/" {
		return root
	}
	parts, err := SplitPath(path)
	if err != nil {
		return nil
	}
	cur := root
	for _, p := range parts {
		next := cur.child(p)
		if next == nil {
			return nil
		}
		cur = next
	}
	return cur
}

// buildWireTree rebuilds a full tree from pre-ordered snapshot nodes.
// Every node here is freshly allocated by this build, so the in-place
// appendChild is legal; snapshot order is the Walk pre-order, which
// appends children in sorted order without shifting.
func buildWireTree(nodes []NodeWire, lat *lattice.Frozen, in *interner, canon *aclCanon, classes *classCanon) (*Node, error) {
	if len(nodes) == 0 || nodes[0].Path != "/" {
		return nil, fmt.Errorf("%w: snapshot must begin at the root", ErrBadPath)
	}
	root, err := decodeNode(nodes[0], lat, in, canon, classes)
	if err != nil {
		return nil, err
	}
	if root.kind != KindRoot {
		return nil, fmt.Errorf("%w: snapshot root has kind %s", ErrBadPath, root.kind)
	}
	for _, w := range nodes[1:] {
		n, err := decodeNode(w, lat, in, canon, classes)
		if err != nil {
			return nil, err
		}
		parent := lookupWire(root, parentOf(w.Path))
		if parent == nil || parent.kind.Leaf() {
			return nil, fmt.Errorf("%w: snapshot node %s has no parent", ErrBadPath, w.Path)
		}
		appendChild(parent, n)
	}
	return root, nil
}

// patchWireTree applies a delta's deletes then upserts to root,
// returning the successor root. Deletes remove whole subtrees (a
// rename encodes as delete + re-upsert); an upsert of an existing path
// replaces the node's content and keeps its children, an upsert of a
// new path creates the node (its parent must already exist — deltas
// list parents before children).
func patchWireTree(root *Node, upserts []NodeWire, deletes []string, lat *lattice.Frozen, in *interner, canon *aclCanon, classes *classCanon) (*Node, error) {
	for _, path := range deletes {
		parts, err := SplitPath(path)
		if err != nil {
			return nil, err
		}
		if len(parts) == 0 {
			return nil, ErrRoot
		}
		if lookupWire(root, path) == nil {
			return nil, fmt.Errorf("%w: delta deletes unknown path %s", ErrNotFound, path)
		}
		root = rebind(root, parts, nil)
	}
	for _, w := range upserts {
		n, err := decodeNode(w, lat, in, canon, classes)
		if err != nil {
			return nil, err
		}
		if w.Path == "/" {
			// Root content change: keep the children, swap the rest.
			n.children = root.children
			root = n
			continue
		}
		if old := lookupWire(root, w.Path); old != nil {
			if old.kind.Leaf() == n.kind.Leaf() && !n.kind.Leaf() {
				n.children = old.children
			}
			// A replicated node keeps whatever payload the replica has
			// locally bound (none, normally): payloads are data plane.
			n.payload = old.payload
		}
		parent := lookupWire(root, parentOf(w.Path))
		if parent == nil || parent.kind.Leaf() {
			return nil, fmt.Errorf("%w: delta upsert %s has no parent", ErrNotFound, w.Path)
		}
		parts, err := SplitPath(w.Path)
		if err != nil {
			return nil, err
		}
		root = rebind(root, parts, n)
	}
	return root, nil
}

// ReplicaApply is one replicated epoch installation: either a full
// snapshot tree (Full non-nil) or a tree patch, plus an optional stack
// swap. PrimaryVersion stamps the journal record so lag is auditable;
// Kind defaults to "replica" ("replica-stale" marks a fail-closed
// installation). The lattice and registry shards are NOT part of this
// call: the replica replays those through the ordinary Define/Add
// entry points first (they are append-only, so the intermediate epochs
// stay consistent), then installs the tree and stack atomically.
type ReplicaApply struct {
	PrimaryVersion uint64
	Kind           string
	Traversal      bool
	Full           []NodeWire
	Upserts        []NodeWire
	Deletes        []string
	Stack          *monitor.Stack
}

// ApplyReplicated installs a replicated epoch transition: one staged
// batch, one atomic publication, journaled with a replication kind and
// the primary version it mirrors. The replica's own version counter
// advances as usual (local bootstrap publications mean the numbers
// differ from the primary's); the journal record ties the two clocks
// together.
func (s *Server) ApplyReplicated(app ReplicaApply) (uint64, error) {
	if app.PrimaryVersion == 0 {
		return 0, fmt.Errorf("names: replicated apply requires a primary version")
	}
	lat := s.lat.Freeze()
	kind := app.Kind
	if kind == "" {
		kind = "replica"
	}
	s.writeMu.Lock()
	cur := s.currentLocked()
	root := cur.root
	var err error
	if app.Full != nil {
		root, err = buildWireTree(app.Full, lat, &s.strings, &s.acls, &s.classes)
	} else if len(app.Upserts) > 0 || len(app.Deletes) > 0 {
		root, err = patchWireTree(cur.root, app.Upserts, app.Deletes, lat, &s.strings, &s.acls, &s.classes)
	}
	if err != nil {
		s.writeMu.Unlock()
		return 0, err
	}
	shards := shardNames
	if app.Stack != nil {
		shards |= shardStack
	}
	b := s.stageLocked(shards, func(e *Epoch) {
		e.root = root
		e.traversal = app.Traversal
		if app.Stack != nil {
			e.stack = app.Stack
		}
	})
	b.replicaKind, b.replicaVersion = kind, app.PrimaryVersion
	s.writeMu.Unlock()
	return s.waiter(b)(), nil
}
