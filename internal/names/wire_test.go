package names

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"secext/internal/acl"
	"secext/internal/lattice"
	"secext/internal/principal"
)

// mirror is an in-process replica of a primary name server at the
// names layer: it bootstraps from a WireSnapshot and tracks the
// primary by replaying wire deltas, exactly as internal/replica does
// over TCP (lattice and registry through the ordinary append-only
// entry points, tree and traversal through ApplyReplicated).
type mirror struct {
	lat *lattice.Lattice
	reg *principal.Registry
	srv *Server
}

func newMirror(t testing.TB, primary *Server) *mirror {
	t.Helper()
	wire, err := primary.Current().WireSnapshot()
	if err != nil {
		t.Fatalf("WireSnapshot: %v", err)
	}
	lat, err := lattice.NewWithUniverse(wire.Levels, wire.Categories)
	if err != nil {
		t.Fatalf("mirror lattice: %v", err)
	}
	bot, _ := lat.Bottom()
	srv := NewServer(lat, acl.New(acl.AllowEveryone(acl.List)), bot)
	reg := principal.NewRegistry(lat)
	for _, pw := range wire.Principals {
		class, err := lat.ParseClass(pw.Class)
		if err != nil {
			t.Fatalf("mirror principal %s: %v", pw.Name, err)
		}
		if _, err := reg.AddPrincipal(pw.Name, class); err != nil {
			t.Fatalf("mirror principal %s: %v", pw.Name, err)
		}
	}
	for _, gw := range wire.Groups {
		if err := reg.AddGroup(gw.Name); err != nil {
			t.Fatalf("mirror group %s: %v", gw.Name, err)
		}
	}
	for _, gw := range wire.Groups {
		for _, m := range gw.Members {
			if err := reg.AddMember(gw.Name, strings.TrimPrefix(m, "@")); err != nil {
				t.Fatalf("mirror member %s->%s: %v", m, gw.Name, err)
			}
		}
	}
	srv.AttachRegistry(reg)
	if _, err := srv.ApplyReplicated(ReplicaApply{
		PrimaryVersion: wire.Version,
		Traversal:      wire.Traversal,
		Full:           wire.Nodes,
	}); err != nil {
		t.Fatalf("mirror bootstrap apply: %v", err)
	}
	return &mirror{lat: lat, reg: reg, srv: srv}
}

// apply replays one delta after a JSON round-trip — the wire contract
// under test is decode(encode(d)), not the in-memory struct.
func (m *mirror) apply(t testing.TB, d *EpochDelta) error {
	t.Helper()
	body, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("delta marshal: %v", err)
	}
	var dd EpochDelta
	if err := json.Unmarshal(body, &dd); err != nil {
		t.Fatalf("delta unmarshal: %v", err)
	}
	for _, lv := range dd.Levels {
		if _, err := m.lat.DefineLevel(lv); err != nil {
			return err
		}
	}
	for _, c := range dd.Categories {
		if _, err := m.lat.DefineCategory(c); err != nil {
			return err
		}
	}
	for _, pw := range dd.Principals {
		class, err := m.lat.ParseClass(pw.Class)
		if err != nil {
			return err
		}
		if _, err := m.reg.AddPrincipal(pw.Name, class); err != nil {
			return err
		}
	}
	for _, gw := range dd.Groups {
		if !m.reg.Freeze().HasGroup(gw.Name) {
			if err := m.reg.AddGroup(gw.Name); err != nil {
				return err
			}
		}
		cur, err := m.reg.Members(gw.Name)
		if err != nil {
			return err
		}
		want := make(map[string]bool, len(gw.Members))
		for _, mem := range gw.Members {
			want[mem] = true
		}
		have := make(map[string]bool, len(cur))
		for _, mem := range cur {
			have[mem] = true
		}
		for _, mem := range cur {
			if !want[mem] {
				if err := m.reg.RemoveMember(gw.Name, strings.TrimPrefix(mem, "@")); err != nil {
					return err
				}
			}
		}
		for _, mem := range gw.Members {
			if !have[mem] {
				if err := m.reg.AddMember(gw.Name, strings.TrimPrefix(mem, "@")); err != nil {
					return err
				}
			}
		}
	}
	_, err = m.srv.ApplyReplicated(ReplicaApply{
		PrimaryVersion: dd.Version,
		Traversal:      dd.Traversal,
		Upserts:        dd.Upserts,
		Deletes:        dd.Deletes,
	})
	return err
}

// wireEquivalent deep-compares the protection state of two epochs:
// traversal flag, lattice universe, registry contents, guard-stack
// descriptor, and every node's wire form (path, kind, class, ACL,
// multilevel — payloads excluded by design). Returns "" when equal.
func wireEquivalent(a, b *Epoch) string {
	if a.TraversalChecks() != b.TraversalChecks() {
		return fmt.Sprintf("traversal %v vs %v", a.TraversalChecks(), b.TraversalChecks())
	}
	if !sameStrings(a.Lattice().Levels(), b.Lattice().Levels()) {
		return fmt.Sprintf("levels %v vs %v", a.Lattice().Levels(), b.Lattice().Levels())
	}
	if !sameStrings(a.Lattice().Categories(), b.Lattice().Categories()) {
		return fmt.Sprintf("categories %v vs %v", a.Lattice().Categories(), b.Lattice().Categories())
	}
	if !sameStrings(a.Stack().Guards(), b.Stack().Guards()) {
		return fmt.Sprintf("stack %v vs %v", a.Stack().Guards(), b.Stack().Guards())
	}
	ap, ag, aerr := registryWire(a)
	bp, bg, berr := registryWire(b)
	if aerr != nil || berr != nil {
		return fmt.Sprintf("registry encode: %v / %v", aerr, berr)
	}
	if fmt.Sprintf("%v", ap) != fmt.Sprintf("%v", bp) {
		return fmt.Sprintf("principals %v vs %v", ap, bp)
	}
	if fmt.Sprintf("%v", ag) != fmt.Sprintf("%v", bg) {
		return fmt.Sprintf("groups %v vs %v", ag, bg)
	}
	encode := func(ep *Epoch) ([]NodeWire, error) {
		var out []NodeWire
		var werr error
		ep.Walk(func(path string, n *Node) {
			if werr != nil {
				return
			}
			w, err := encodeNode(n, ep.lat)
			if err != nil {
				werr = err
				return
			}
			out = append(out, w)
		})
		return out, werr
	}
	an, aerr2 := encode(a)
	bn, berr2 := encode(b)
	if aerr2 != nil || berr2 != nil {
		return fmt.Sprintf("tree encode: %v / %v", aerr2, berr2)
	}
	if len(an) != len(bn) {
		return fmt.Sprintf("tree size %d vs %d", len(an), len(bn))
	}
	for i := range an {
		if an[i] != bn[i] {
			return fmt.Sprintf("node %d: %+v vs %+v", i, an[i], bn[i])
		}
	}
	return ""
}

// verdictsAgree compares mediated verdicts between the two epochs for
// every principal on every leaf path — on a compiled epoch this runs
// the locally rebuilt summaries, so agreement here is the "compiled
// read side rebuilt at apply time matches the primary's" claim.
func verdictsAgree(a, b *Epoch) string {
	if a.Registry() == nil || b.Registry() == nil {
		return ""
	}
	var leaves []string
	a.Walk(func(path string, n *Node) {
		if n.Kind().Leaf() {
			leaves = append(leaves, path)
		}
	})
	for _, name := range a.Registry().Principals() {
		// Classes are lattice-scoped (cross-lattice comparisons are
		// always false), so each side checks with the class its own
		// registry assigned — exactly what a live replica does.
		pa, err := a.Registry().Principal(name)
		if err != nil {
			return err.Error()
		}
		pb, err := b.Registry().Principal(name)
		if err != nil {
			return fmt.Sprintf("mirror missing principal %s: %v", name, err)
		}
		for _, path := range leaves {
			for _, mode := range []acl.Mode{acl.Read, acl.Write, acl.Administrate} {
				_, aerr := a.CheckIn(subj(name), pa.Class(), path, mode)
				_, berr := b.CheckIn(subj(name), pb.Class(), path, mode)
				if (aerr == nil) != (berr == nil) {
					return fmt.Sprintf("%s %s on %s: primary err=%v, mirror err=%v",
						name, mode, path, aerr, berr)
				}
			}
		}
	}
	return ""
}

// wirePrimary builds a primary with tree, registry, groups, and a
// multilevel directory — every wire feature in one fixture.
func wirePrimary(t *testing.T) (*fixture, *principal.Registry) {
	t.Helper()
	f := newFixture(t)
	f.mkTree(t)
	reg := principal.NewRegistry(f.lat)
	if _, err := reg.AddPrincipal("alice", f.org); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddPrincipal("bob", f.bot); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddGroup("eng"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMember("eng", "alice"); err != nil {
		t.Fatal(err)
	}
	f.srv.AttachRegistry(reg)
	open := acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List))
	if _, err := f.srv.BindUnchecked("/svc", BindSpec{
		Name: "home", Kind: KindDirectory, ACL: open, Class: f.bot, Multilevel: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.srv.BindUnchecked("/svc/home", BindSpec{
		Name: "f1", Kind: KindFile,
		ACL:   acl.New(acl.Allow("root", acl.AllModes), acl.Allow("alice", acl.Read|acl.Write)),
		Class: f.org,
	}); err != nil {
		t.Fatal(err)
	}
	return f, reg
}

// TestWireSnapshotRoundTrip: a mirror bootstrapped from a snapshot is
// protection-state-equivalent to the primary, and its locally rebuilt
// compiled read side answers identically.
func TestWireSnapshotRoundTrip(t *testing.T) {
	f, _ := wirePrimary(t)
	m := newMirror(t, f.srv)
	pe, me := f.srv.Current(), m.srv.Current()
	if diff := wireEquivalent(pe, me); diff != "" {
		t.Fatalf("snapshot round-trip not equivalent: %s", diff)
	}
	if pe.Compiled() != me.Compiled() {
		t.Fatalf("compiled: primary %v, mirror %v", pe.Compiled(), me.Compiled())
	}
	if diff := verdictsAgree(pe, me); diff != "" {
		t.Fatalf("verdicts diverge after snapshot: %s", diff)
	}
}

// TestWireDeltaSequence tracks the primary through one mutation of
// every shard, applying the JSON-round-tripped delta after each and
// asserting equivalence.
func TestWireDeltaSequence(t *testing.T) {
	f, reg := wirePrimary(t)
	m := newMirror(t, f.srv)
	prev := f.srv.Current()

	step := func(what string, mutate func() error) {
		t.Helper()
		if err := mutate(); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		next := f.srv.Current()
		d, err := DiffEpochs(prev, next)
		if err != nil {
			t.Fatalf("%s: diff: %v", what, err)
		}
		if err := m.apply(t, d); err != nil {
			t.Fatalf("%s: apply: %v", what, err)
		}
		if diff := wireEquivalent(next, m.srv.Current()); diff != "" {
			t.Fatalf("%s: not equivalent: %s", what, diff)
		}
		if diff := verdictsAgree(next, m.srv.Current()); diff != "" {
			t.Fatalf("%s: verdicts diverge: %s", what, diff)
		}
		prev = next
	}

	step("acl edit", func() error {
		return f.srv.SetACLUnchecked("/svc/fs/read", acl.New(acl.Allow("alice", acl.Read)))
	})
	step("bind", func() error {
		_, err := f.srv.BindUnchecked("/svc/home", BindSpec{
			Name: "f2", Kind: KindFile,
			ACL: acl.New(acl.AllowGroup("eng", acl.Read)), Class: f.bot,
		})
		return err
	})
	step("delete", func() error { return f.srv.Unbind(f.root, f.org, "/svc/home/f1") })
	step("level define", func() error { _, err := f.lat.DefineLevel("ultra"); return err })
	step("category define", func() error { _, err := f.lat.DefineCategory("dept-3"); return err })
	step("principal add", func() error {
		_, err := reg.AddPrincipal("carol", f.org)
		return err
	})
	step("member add", func() error { return reg.AddMember("eng", "carol") })
	step("member remove (revocation)", func() error { return reg.RemoveMember("eng", "alice") })
	step("traversal toggle", func() error { f.srv.SetTraversalChecks(true); return nil })
	step("class change", func() error {
		ultra := f.lat.MustClass("ultra", "dept-3")
		return f.srv.SetClassUnchecked("/svc/home", ultra)
	})
}

// FuzzEpochDeltaCodec drives a random mutation script against a
// primary, derives the delta for every transition, JSON round-trips
// it, applies it to a mirror, and requires the mirror to equal the
// primary's successor epoch — the replication soundness claim,
// fuzzed. Each script byte selects one mutation; payload bytes are
// folded into names so scripts explore bind/delete collisions.
func FuzzEpochDeltaCodec(f *testing.F) {
	f.Add([]byte("ab"))
	f.Add([]byte("nnd"))
	f.Add([]byte("lcpgr"))
	f.Add([]byte("anbndlcpgrtna"))
	f.Add([]byte{0xff, 0x00, 'n', 'd', 'd', 'n'})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 48 {
			script = script[:48]
		}
		fx, reg := wirePrimary(t)
		m := newMirror(t, fx.srv)
		prev := fx.srv.Current()
		open := acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List))
		var bound []string
		seq := 0
		for i, op := range script {
			var err error
			switch op % 8 {
			case 0: // acl flip on a fixed node
				a := acl.New(acl.Allow("alice", acl.Read))
				if i%2 == 0 {
					a = acl.New(acl.AllowGroup("eng", acl.Read|acl.Write))
				}
				err = fx.srv.SetACLUnchecked("/svc/fs/read", a)
			case 1: // bind a fresh node under /svc/home
				seq++
				name := fmt.Sprintf("n%d", seq)
				_, err = fx.srv.BindUnchecked("/svc/home", BindSpec{
					Name: name, Kind: KindFile, ACL: open, Class: fx.bot,
				})
				if err == nil {
					bound = append(bound, "/svc/home/"+name)
				}
			case 2: // delete the most recent bound node, if any
				if len(bound) == 0 {
					continue
				}
				err = fx.srv.Unbind(fx.root, fx.bot, bound[len(bound)-1])
				bound = bound[:len(bound)-1]
			case 3: // append a lattice level
				seq++
				_, err = fx.lat.DefineLevel(fmt.Sprintf("lv%d", seq))
			case 4: // append a category
				seq++
				_, err = fx.lat.DefineCategory(fmt.Sprintf("cat%d", seq))
			case 5: // add a principal
				seq++
				_, err = reg.AddPrincipal(fmt.Sprintf("p%d", seq), fx.bot)
			case 6: // membership churn: add then remove exercise both
				if i%2 == 0 {
					err = reg.AddMember("eng", "bob")
				} else {
					err = reg.RemoveMember("eng", "bob")
				}
				if err != nil {
					// Adding a present member / removing an absent one
					// is a no-op for the protection state; skip.
					continue
				}
			case 7: // traversal toggle
				fx.srv.SetTraversalChecks(i%2 == 0)
			}
			if err != nil {
				t.Fatalf("op %d (%q): %v", i, op, err)
			}
			next := fx.srv.Current()
			if next.Version() == prev.Version() {
				continue
			}
			d, err := DiffEpochs(prev, next)
			if err != nil {
				t.Fatalf("op %d: diff v%d->v%d: %v", i, prev.Version(), next.Version(), err)
			}
			if err := m.apply(t, d); err != nil {
				t.Fatalf("op %d: apply v%d->v%d: %v", i, prev.Version(), next.Version(), err)
			}
			if diff := wireEquivalent(next, m.srv.Current()); diff != "" {
				t.Fatalf("op %d: mirror diverged at v%d: %s", i, next.Version(), diff)
			}
			prev = next
		}
		if diff := verdictsAgree(prev, m.srv.Current()); diff != "" {
			t.Fatalf("final verdicts diverge: %s", diff)
		}
	})
}

// TestJournalWraparound: more transitions than the ring holds — the
// journal keeps exactly journalCap records, newest first, and the
// oldest are dropped.
func TestJournalWraparound(t *testing.T) {
	f := newFixture(t)
	f.mkTree(t)
	a := acl.New(acl.Allow("alice", acl.Read))
	b := acl.New(acl.Allow("bob", acl.Read))
	base := f.srv.Version()
	const n = journalCap + 40
	for i := 0; i < n; i++ {
		next := a
		if i%2 == 0 {
			next = b
		}
		if err := f.srv.SetACLUnchecked("/svc/fs/read", next); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.srv.JournalLen(); got != journalCap {
		t.Fatalf("JournalLen = %d, want cap %d", got, journalCap)
	}
	recs := f.srv.Journal(0)
	if len(recs) != journalCap {
		t.Fatalf("Journal(0) returned %d records, want %d", len(recs), journalCap)
	}
	// Newest first, versions strictly descending, and the oldest
	// retained record is exactly cap transitions back.
	for i := 1; i < len(recs); i++ {
		if recs[i].Version != recs[i-1].Version-1 {
			t.Fatalf("journal not newest-first at %d: v%d then v%d",
				i, recs[i-1].Version, recs[i].Version)
		}
	}
	newest := f.srv.Version()
	if recs[0].Version != newest {
		t.Fatalf("newest journal record v%d, want current v%d", recs[0].Version, newest)
	}
	oldest := recs[len(recs)-1].Version
	if oldest != newest-journalCap+1 {
		t.Fatalf("oldest retained v%d, want v%d", oldest, newest-journalCap+1)
	}
	if oldest <= base {
		t.Fatalf("wraparound did not drop pre-churn records: oldest v%d, base v%d", oldest, base)
	}
}

// TestJournalReplicationKinds: replication applies journal with their
// own kind and the primary version they mirror; local publications
// stay unmarked.
func TestJournalReplicationKinds(t *testing.T) {
	f, _ := wirePrimary(t)
	m := newMirror(t, f.srv)

	// The mirror's bootstrap apply is stamped kind=replica with the
	// primary's version.
	recs := m.srv.Journal(1)
	if len(recs) != 1 {
		t.Fatalf("mirror journal empty after bootstrap")
	}
	if recs[0].Kind != "replica" || recs[0].PrimaryVersion != f.srv.Version() {
		t.Fatalf("bootstrap record kind=%q primary=v%d, want replica/v%d",
			recs[0].Kind, recs[0].PrimaryVersion, f.srv.Version())
	}

	// A stale-style apply records its distinct kind.
	if _, err := m.srv.ApplyReplicated(ReplicaApply{
		PrimaryVersion: f.srv.Version(),
		Kind:           "replica-stale",
		Traversal:      m.srv.Current().TraversalChecks(),
	}); err != nil {
		t.Fatal(err)
	}
	recs = m.srv.Journal(1)
	if recs[0].Kind != "replica-stale" {
		t.Fatalf("stale record kind=%q, want replica-stale", recs[0].Kind)
	}

	// Local publications carry no replication stamp.
	if err := f.srv.SetACLUnchecked("/svc/fs/read", acl.New(acl.Allow("alice", acl.Read))); err != nil {
		t.Fatal(err)
	}
	recs = f.srv.Journal(1)
	if recs[0].Kind != "" || recs[0].PrimaryVersion != 0 {
		t.Fatalf("local record stamped kind=%q primary=v%d", recs[0].Kind, recs[0].PrimaryVersion)
	}
}
