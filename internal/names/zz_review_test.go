package names

import "testing"

// Reproducer: relabel an interior node and check that descendants'
// compiled visibility chains track the new class.
func TestReviewRelabelStaleVisChain(t *testing.T) {
	cf := newCompiledFixture(t)
	if err := cf.srv.SetClassUnchecked("/svc/fs", cf.top); err != nil {
		t.Fatal(err)
	}
	assertCompiledEquiv(t, cf.srv.Current(), cf.subs, cf.classes())
}
