package policy

import "testing"

// FuzzParse checks that policy parsing never panics and that accepted
// documents reach a Format/Parse fixed point.
func FuzzParse(f *testing.F) {
	f.Add("levels a\n")
	f.Add("levels a b\ncategories x y\nprincipal p class a\n")
	f.Add("levels a\ngroup g\nmember g g\n")
	f.Add("levels a\nnode /x domain class a\nacl /x allow * read\n")
	f.Add("levels a\nservice /s class a\n")
	f.Add("levels a\nnode /d directory multilevel\n")
	f.Add("# comment only\nlevels a\n")
	f.Add("levels\n")
	f.Add("bogus directive\n")
	f.Fuzz(func(t *testing.T, doc string) {
		p, err := ParseString(doc)
		if err != nil {
			return
		}
		out := p.Format()
		p2, err := ParseString(out)
		if err != nil {
			t.Fatalf("reparse of formatted policy failed: %v\n%s", err, out)
		}
		if p2.Format() != out {
			t.Fatalf("Format not fixed point:\n%s\n---\n%s", out, p2.Format())
		}
	})
}
