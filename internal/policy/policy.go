// Package policy implements a small textual policy language that
// configures a complete secext system: the lattice universe, principals
// and groups, the protected name space, and the ACL on every node. It
// exists so that the §2.2 organization scenario — and any deployment's
// protection state — can be written down, reviewed, and loaded as one
// artifact, the way mainstream systems express their protection state
// in /etc files the paper wants users to find familiar.
//
// Grammar (one directive per line, '#' starts a comment):
//
//	levels <name>...                 # trust levels, lowest first (required, once)
//	categories <name>...             # category universe (optional, once)
//	principal <name> class <label>   # register a principal at a class
//	group <name>                     # declare a group
//	member <group> <name-or-group>   # add a member (groups nest)
//	node <path> <kind> [multilevel] [class <label>]
//	service <path> [class <label>]   # method node awaiting a base handler
//	acl <path> <allow|deny> <who> <modes>
//	admit <pattern> class <label> [clamp <label>] [register]
//
// where <kind> is domain|interface|object|method|directory|file, <who>
// is a principal name, @group, or *, <modes> is an internal/acl mode
// list, and <label> is a lattice class label such as
// "organization:{dept-1}" (default: the bottom class). admit directives
// declare origin-based admission rules (internal/admission): <pattern>
// is an origin pattern ("local", "*.example.com", "*"), clamp forces a
// static class onto admitted manifests, and register auto-creates
// unknown principals at the rule's class. BuildAdmitter turns them into
// a live admission.Admitter.
package policy

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"

	"secext/internal/acl"
	"secext/internal/admission"
	"secext/internal/core"
	"secext/internal/names"
)

// ErrSyntax reports a malformed policy text.
var ErrSyntax = errors.New("policy: syntax error")

// NodeDecl is one declared name-space node.
type NodeDecl struct {
	Path       string
	Kind       names.Kind
	Multilevel bool
	ClassLabel string // "" = bottom
	Service    bool   // method node to be wired to a base handler
}

// ACLDecl is one declared ACL entry.
type ACLDecl struct {
	Path  string
	Entry acl.Entry
}

// PrincipalDecl declares one principal.
type PrincipalDecl struct {
	Name       string
	ClassLabel string
}

// MemberDecl adds a member to a group.
type MemberDecl struct {
	Group, Member string
}

// AdmissionDecl declares one origin-based admission rule.
type AdmissionDecl struct {
	Pattern      string
	ClassLabel   string
	Clamp        string
	AutoRegister bool
}

// Policy is a parsed policy document.
type Policy struct {
	Levels     []string
	Categories []string
	Principals []PrincipalDecl
	Groups     []string
	Members    []MemberDecl
	Nodes      []NodeDecl
	ACLs       []ACLDecl
	Admissions []AdmissionDecl
}

var kindNames = map[string]names.Kind{
	"domain":    names.KindDomain,
	"interface": names.KindInterface,
	"object":    names.KindObject,
	"method":    names.KindMethod,
	"directory": names.KindDirectory,
	"file":      names.KindFile,
}

func syntaxErr(line int, format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrSyntax, line, fmt.Sprintf(format, args...))
}

// Parse reads a policy document.
func Parse(r io.Reader) (*Policy, error) {
	p := &Policy{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := p.directive(lineNo, fields); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(p.Levels) == 0 {
		return nil, fmt.Errorf("%w: no levels directive", ErrSyntax)
	}
	return p, nil
}

// ParseString parses a policy from a string.
func ParseString(s string) (*Policy, error) {
	return Parse(strings.NewReader(s))
}

func (p *Policy) directive(line int, fields []string) error {
	switch fields[0] {
	case "levels":
		if len(p.Levels) > 0 {
			return syntaxErr(line, "duplicate levels directive")
		}
		if len(fields) < 2 {
			return syntaxErr(line, "levels needs at least one name")
		}
		p.Levels = fields[1:]
	case "categories":
		if len(p.Categories) > 0 {
			return syntaxErr(line, "duplicate categories directive")
		}
		if len(fields) < 2 {
			return syntaxErr(line, "categories needs at least one name")
		}
		p.Categories = fields[1:]
	case "principal":
		if len(fields) != 4 || fields[2] != "class" {
			return syntaxErr(line, "usage: principal <name> class <label>")
		}
		p.Principals = append(p.Principals, PrincipalDecl{Name: fields[1], ClassLabel: fields[3]})
	case "group":
		if len(fields) != 2 {
			return syntaxErr(line, "usage: group <name>")
		}
		p.Groups = append(p.Groups, fields[1])
	case "member":
		if len(fields) != 3 {
			return syntaxErr(line, "usage: member <group> <name-or-group>")
		}
		p.Members = append(p.Members, MemberDecl{Group: fields[1], Member: fields[2]})
	case "node", "service":
		return p.nodeDirective(line, fields)
	case "acl":
		if len(fields) != 5 {
			return syntaxErr(line, "usage: acl <path> <allow|deny> <who> <modes>")
		}
		entry, err := acl.ParseEntry(strings.Join(fields[2:], " "))
		if err != nil {
			return syntaxErr(line, "%v", err)
		}
		p.ACLs = append(p.ACLs, ACLDecl{Path: fields[1], Entry: entry})
	case "admit":
		if len(fields) < 4 || fields[2] != "class" {
			return syntaxErr(line, "usage: admit <pattern> class <label> [clamp <label>] [register]")
		}
		decl := AdmissionDecl{Pattern: fields[1], ClassLabel: fields[3]}
		rest := fields[4:]
		for len(rest) > 0 {
			switch rest[0] {
			case "clamp":
				if len(rest) < 2 {
					return syntaxErr(line, "clamp needs a label")
				}
				decl.Clamp = rest[1]
				rest = rest[2:]
			case "register":
				decl.AutoRegister = true
				rest = rest[1:]
			default:
				return syntaxErr(line, "unexpected token %q", rest[0])
			}
		}
		p.Admissions = append(p.Admissions, decl)
	default:
		return syntaxErr(line, "unknown directive %q", fields[0])
	}
	return nil
}

func (p *Policy) nodeDirective(line int, fields []string) error {
	isService := fields[0] == "service"
	decl := NodeDecl{Service: isService}
	if len(fields) < 2 {
		return syntaxErr(line, "usage: %s <path> ...", fields[0])
	}
	decl.Path = fields[1]
	if _, err := names.SplitPath(decl.Path); err != nil {
		return syntaxErr(line, "%v", err)
	}
	rest := fields[2:]
	if isService {
		decl.Kind = names.KindMethod
	} else {
		if len(rest) == 0 {
			return syntaxErr(line, "node needs a kind")
		}
		k, ok := kindNames[rest[0]]
		if !ok || k == names.KindRoot {
			return syntaxErr(line, "unknown node kind %q", rest[0])
		}
		decl.Kind = k
		rest = rest[1:]
	}
	for len(rest) > 0 {
		switch rest[0] {
		case "multilevel":
			decl.Multilevel = true
			rest = rest[1:]
		case "class":
			if len(rest) < 2 {
				return syntaxErr(line, "class needs a label")
			}
			decl.ClassLabel = rest[1]
			rest = rest[2:]
		default:
			return syntaxErr(line, "unexpected token %q", rest[0])
		}
	}
	p.Nodes = append(p.Nodes, decl)
	return nil
}

// Build creates a fresh system and applies the whole policy to it.
// Node declarations are applied in document order, so parents must be
// declared before children. Service nodes are created but carry no base
// handler; wire them with core.System.AttachBase.
func (p *Policy) Build(opts core.Options) (*core.System, error) {
	opts.Levels = p.Levels
	opts.Categories = p.Categories
	sys, err := core.NewSystem(opts)
	if err != nil {
		return nil, err
	}
	if err := p.Apply(sys); err != nil {
		return nil, err
	}
	return sys, nil
}

// Apply applies the declarations (principals, groups, nodes, ACLs) to
// an existing system whose lattice must already contain the policy's
// levels and categories.
func (p *Policy) Apply(sys *core.System) error {
	lat := sys.Lattice()
	for _, lv := range p.Levels {
		if _, err := lat.LevelByName(lv); err != nil {
			return fmt.Errorf("policy: %w", err)
		}
	}
	for _, pr := range p.Principals {
		if _, err := sys.AddPrincipal(pr.Name, pr.ClassLabel); err != nil {
			return fmt.Errorf("policy: principal %s: %w", pr.Name, err)
		}
	}
	for _, g := range p.Groups {
		if err := sys.Registry().AddGroup(g); err != nil {
			return fmt.Errorf("policy: group %s: %w", g, err)
		}
	}
	// Group membership lines by group so each group costs one freeze and
	// one epoch publication instead of one per member. Insertion order
	// within the final graph does not matter for cycle detection: a cycle
	// is a property of the edge set, so any order over an acyclic-final
	// graph is accepted.
	memberOf := make(map[string][]string)
	var memberOrder []string
	for _, m := range p.Members {
		if _, ok := memberOf[m.Group]; !ok {
			memberOrder = append(memberOrder, m.Group)
		}
		memberOf[m.Group] = append(memberOf[m.Group], m.Member)
	}
	for _, g := range memberOrder {
		if _, err := sys.Registry().AddMembers(g, memberOf[g]...); err != nil {
			return fmt.Errorf("policy: members of %s: %w", g, err)
		}
	}
	for _, n := range p.Nodes {
		spec := core.NodeSpec{Path: n.Path, Kind: n.Kind, Multilevel: n.Multilevel}
		if n.ClassLabel != "" {
			class, err := lat.ParseClass(n.ClassLabel)
			if err != nil {
				return fmt.Errorf("policy: node %s: %w", n.Path, err)
			}
			spec.Class = class
		}
		if _, err := sys.CreateNode(spec); err != nil {
			return fmt.Errorf("policy: node %s: %w", n.Path, err)
		}
	}
	// Collect entries per path so multiple acl lines merge.
	perPath := make(map[string]*acl.ACL)
	var order []string
	for _, d := range p.ACLs {
		a, ok := perPath[d.Path]
		if !ok {
			a = acl.New()
			perPath[d.Path] = a
			order = append(order, d.Path)
		}
		a.Add(d.Entry)
	}
	// Install every ACL in one batch: one name-tree freeze and one epoch
	// publication for the whole document instead of one per path.
	edits := make([]names.ACLEdit, 0, len(order))
	for _, path := range order {
		edits = append(edits, names.ACLEdit{Path: path, ACL: perPath[path]})
	}
	if _, err := sys.Names().SetACLsUnchecked(edits); err != nil {
		return fmt.Errorf("policy: acl: %w", err)
	}
	return nil
}

// Format renders the policy back into its textual form.
func (p *Policy) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "levels %s\n", strings.Join(p.Levels, " "))
	if len(p.Categories) > 0 {
		fmt.Fprintf(&b, "categories %s\n", strings.Join(p.Categories, " "))
	}
	for _, pr := range p.Principals {
		fmt.Fprintf(&b, "principal %s class %s\n", pr.Name, pr.ClassLabel)
	}
	for _, g := range p.Groups {
		fmt.Fprintf(&b, "group %s\n", g)
	}
	for _, m := range p.Members {
		fmt.Fprintf(&b, "member %s %s\n", m.Group, m.Member)
	}
	for _, n := range p.Nodes {
		if n.Service {
			fmt.Fprintf(&b, "service %s", n.Path)
		} else {
			kind := ""
			for name, k := range kindNames {
				if k == n.Kind {
					kind = name
					break
				}
			}
			fmt.Fprintf(&b, "node %s %s", n.Path, kind)
		}
		if n.Multilevel {
			b.WriteString(" multilevel")
		}
		if n.ClassLabel != "" {
			fmt.Fprintf(&b, " class %s", n.ClassLabel)
		}
		b.WriteByte('\n')
	}
	for _, d := range p.ACLs {
		fmt.Fprintf(&b, "acl %s %s\n", d.Path, d.Entry)
	}
	for _, d := range p.Admissions {
		fmt.Fprintf(&b, "admit %s class %s", d.Pattern, d.ClassLabel)
		if d.Clamp != "" {
			fmt.Fprintf(&b, " clamp %s", d.Clamp)
		}
		if d.AutoRegister {
			b.WriteString(" register")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BuildAdmitter turns the policy's admit directives into a live
// origin-based admission front end over the system's loader. Policies
// without admit directives yield an admitter that denies every origin
// (fail-closed).
func (p *Policy) BuildAdmitter(sys *core.System) (*admission.Admitter, error) {
	rules := make([]admission.Rule, 0, len(p.Admissions))
	for _, d := range p.Admissions {
		rules = append(rules, admission.Rule{
			Pattern:      d.Pattern,
			ClassLabel:   d.ClassLabel,
			StaticClamp:  d.Clamp,
			AutoRegister: d.AutoRegister,
		})
	}
	return admission.New(sys, rules)
}
