package policy

import (
	"errors"
	"strings"
	"testing"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/names"
	"secext/internal/subject"
)

// orgPolicy is the §2.2 worked example as a policy document.
const orgPolicy = `
# The paper's organization example (HotOS 97, section 2.2).
levels others organization local
categories myself dept-1 dept-2 outside

principal user    class local:{myself,dept-1,dept-2,outside}
principal applet1 class organization:{dept-1}
principal applet2 class organization:{dept-2}
principal applet3 class organization:{dept-1,dept-2}
principal outside class others:{outside}

group org-applets
member org-applets applet1
member org-applets applet2
member org-applets applet3

node /svc domain class others
node /svc/fs interface class others
service /svc/fs/read class others
node /files directory multilevel class others

acl /svc equ-ignored-below allow-dummy none       # overwritten below
`

// The trailing bogus line above is intentional for the error test; the
// valid document drops it.
var validOrgPolicy = strings.Replace(orgPolicy,
	"acl /svc equ-ignored-below allow-dummy none       # overwritten below",
	`acl /svc allow * list
acl /svc/fs allow * list
acl /svc/fs/read allow @org-applets execute,list
acl /svc/fs/read allow user execute,extend,list
acl /files allow * list,write`, 1)

func TestParseValid(t *testing.T) {
	p, err := ParseString(validOrgPolicy)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Levels) != 3 || p.Levels[2] != "local" {
		t.Errorf("Levels = %v", p.Levels)
	}
	if len(p.Categories) != 4 {
		t.Errorf("Categories = %v", p.Categories)
	}
	if len(p.Principals) != 5 || p.Principals[0].Name != "user" {
		t.Errorf("Principals = %v", p.Principals)
	}
	if len(p.Groups) != 1 || len(p.Members) != 3 {
		t.Errorf("Groups/Members = %v %v", p.Groups, p.Members)
	}
	if len(p.Nodes) != 4 {
		t.Errorf("Nodes = %v", p.Nodes)
	}
	svc := p.Nodes[2]
	if !svc.Service || svc.Kind != names.KindMethod || svc.ClassLabel != "others" {
		t.Errorf("service decl = %+v", svc)
	}
	files := p.Nodes[3]
	if !files.Multilevel || files.Kind != names.KindDirectory {
		t.Errorf("files decl = %+v", files)
	}
	if len(p.ACLs) != 5 {
		t.Errorf("ACLs = %v", p.ACLs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"no levels", "categories a b\n"},
		{"dup levels", "levels a\nlevels b\n"},
		{"dup categories", "levels a\ncategories x\ncategories y\n"},
		{"empty levels", "levels\n"},
		{"bad principal", "levels a\nprincipal alice a\n"},
		{"bad group", "levels a\ngroup\n"},
		{"bad member", "levels a\nmember g\n"},
		{"bad node kind", "levels a\nnode /x widget\n"},
		{"root node kind", "levels a\nnode /x root\n"},
		{"node no kind", "levels a\nnode /x\n"},
		{"bad node path", "levels a\nnode relative domain\n"},
		{"node trailing junk", "levels a\nnode /x domain banana\n"},
		{"node class no label", "levels a\nnode /x domain class\n"},
		{"bad acl", "levels a\nacl /x allow alice\n"},
		{"bad acl verb", "levels a\nacl /x grant alice read\n"},
		{"bad acl modes", "levels a\nacl /x allow alice fly\n"},
		{"unknown directive", "levels a\nfrobnicate\n"},
	}
	for _, tc := range cases {
		if _, err := ParseString(tc.text); !errors.Is(err, ErrSyntax) {
			t.Errorf("%s: got %v, want ErrSyntax", tc.name, err)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p, err := ParseString("# header\n\nlevels a b # trailing\n\n# done\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Levels) != 2 {
		t.Errorf("Levels = %v", p.Levels)
	}
}

func TestBuildOrgScenario(t *testing.T) {
	p, err := ParseString(validOrgPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := p.Build(core.Options{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Wire the declared service.
	err = sys.AttachBase("/svc/fs/read", dispatch.Binding{
		Owner: "base",
		Handler: func(ctx *subject.Context, arg any) (any, error) {
			return "read", nil
		},
	})
	if err != nil {
		t.Fatalf("AttachBase: %v", err)
	}
	ctx := func(name string) *subject.Context {
		c, err := sys.NewContext(name)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Group grant works for all three applets.
	for _, a := range []string{"applet1", "applet2", "applet3"} {
		if _, err := sys.Call(ctx(a), "/svc/fs/read", nil); err != nil {
			t.Errorf("%s call: %v", a, err)
		}
	}
	// The outside principal has no execute grant.
	if _, err := sys.Call(ctx("outside"), "/svc/fs/read", nil); !core.IsDenied(err) {
		t.Errorf("outside call: got %v", err)
	}
	// Only user may extend.
	b := dispatch.Binding{Owner: "x", Handler: func(ctx *subject.Context, arg any) (any, error) { return nil, nil }}
	if err := sys.Extend(ctx("applet1"), "/svc/fs/read", b); !core.IsDenied(err) {
		t.Errorf("applet extend: got %v", err)
	}
	if err := sys.Extend(ctx("user"), "/svc/fs/read", b); err != nil {
		t.Errorf("user extend: %v", err)
	}
	// Membership from policy.
	u, _ := sys.Registry().Principal("applet1")
	if !u.MemberOf("org-applets") {
		t.Error("policy group membership")
	}
}

func TestApplyErrors(t *testing.T) {
	base := "levels a b\nprincipal p class b\n"
	p, err := ParseString(base)
	if err != nil {
		t.Fatal(err)
	}
	// Apply to a system missing level b.
	sys, err := core.NewSystem(core.Options{Levels: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(sys); err == nil {
		t.Error("Apply with missing level must fail")
	}
	// Bad principal class label.
	p2, _ := ParseString("levels a\nprincipal p class nope\n")
	if _, err := p2.Build(core.Options{}); err == nil {
		t.Error("bad principal class must fail")
	}
	// Node with bad class.
	p3, _ := ParseString("levels a\nnode /x domain class nope\n")
	if _, err := p3.Build(core.Options{}); err == nil {
		t.Error("bad node class must fail")
	}
	// Node under missing parent.
	p4, _ := ParseString("levels a\nnode /x/y domain\n")
	if _, err := p4.Build(core.Options{}); err == nil {
		t.Error("orphan node must fail")
	}
	// ACL on missing node.
	p5, _ := ParseString("levels a\nacl /ghost allow p read\n")
	if _, err := p5.Build(core.Options{}); err == nil {
		t.Error("ACL on missing node must fail")
	}
	// Member of missing group.
	p6, _ := ParseString("levels a\nprincipal p class a\nmember ghost p\n")
	if _, err := p6.Build(core.Options{}); err == nil {
		t.Error("member of missing group must fail")
	}
}

func TestMultipleACLLinesMerge(t *testing.T) {
	text := `levels a
principal p class a
principal q class a
node /n object
acl /n allow p read
acl /n allow p write
acl /n deny q read
`
	p, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := p.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Names().ACLOf("/n")
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 { // p-allow merged, q-deny separate
		t.Errorf("ACL = %v", a)
	}
	pc, _ := sys.NewContext("p")
	if _, err := sys.CheckData(pc, "/n", acl.Read|acl.Write); err != nil {
		t.Errorf("merged modes: %v", err)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p, err := ParseString(validOrgPolicy)
	if err != nil {
		t.Fatal(err)
	}
	text := p.Format()
	p2, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if p2.Format() != text {
		t.Errorf("Format not fixed-point:\n%s\n---\n%s", text, p2.Format())
	}
	// The rebuilt policy produces an equivalent system.
	if _, err := p2.Build(core.Options{}); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
}

func TestAdmitDirectives(t *testing.T) {
	text := `levels others organization local
admit local class local register
admit *.corp.example class organization:{} clamp organization register
admit * class others clamp others
`
	p, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Admissions) != 3 {
		t.Fatalf("Admissions = %v", p.Admissions)
	}
	if p.Admissions[1].Clamp != "organization" || !p.Admissions[1].AutoRegister {
		t.Errorf("decl = %+v", p.Admissions[1])
	}
	if p.Admissions[2].AutoRegister {
		t.Errorf("decl without register = %+v", p.Admissions[2])
	}
	// Format round trip.
	p2, err := ParseString(p.Format())
	if err != nil || len(p2.Admissions) != 3 || p2.Format() != p.Format() {
		t.Errorf("round trip: %v\n%s", err, p.Format())
	}
	// Live admitter.
	sys, err := p.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	adm, err := p.BuildAdmitter(sys)
	if err != nil {
		t.Fatalf("BuildAdmitter: %v", err)
	}
	r, ok := adm.Match("x.corp.example")
	if !ok || r.StaticClamp != "organization" {
		t.Errorf("Match = %+v, %v", r, ok)
	}
	// Parse errors.
	for _, bad := range []string{
		"levels a\nadmit\n",
		"levels a\nadmit p\n",
		"levels a\nadmit p klass x\n",
		"levels a\nadmit p class a clamp\n",
		"levels a\nadmit p class a banana\n",
	} {
		if _, err := ParseString(bad); !errors.Is(err, ErrSyntax) {
			t.Errorf("%q: got %v", bad, err)
		}
	}
	// Bad label surfaces at BuildAdmitter time.
	p3, _ := ParseString("levels a\nadmit * class nope\n")
	sys3, _ := p3.Build(core.Options{})
	if _, err := p3.BuildAdmitter(sys3); err == nil {
		t.Error("bad admit label must fail BuildAdmitter")
	}
}

func TestAttachBaseValidation(t *testing.T) {
	p, _ := ParseString("levels a\nnode /d domain\n")
	sys, err := p.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := dispatch.Binding{Owner: "o", Handler: func(ctx *subject.Context, arg any) (any, error) { return nil, nil }}
	if err := sys.AttachBase("/d", b); !errors.Is(err, core.ErrConfig) {
		t.Errorf("AttachBase on non-method: got %v", err)
	}
	if err := sys.AttachBase("/ghost", b); !errors.Is(err, names.ErrNotFound) {
		t.Errorf("AttachBase on missing: got %v", err)
	}
}
