package policy

import (
	"fmt"
	"strings"

	"secext/internal/core"
	"secext/internal/names"
)

// Snapshot extracts the live protection state of a system back into a
// policy document: the lattice universe, every principal with its class
// label, every group with its direct members, every name-space node
// with kind/class/multilevel, and every ACL entry. The result can be
// reviewed, diffed against an intended policy, stored, and rebuilt with
// Build — the administrator's round trip over the single name space.
//
// Node payloads (service implementations, file contents) are not part
// of protection state and are not captured; method nodes with a
// registered base implementation are emitted as `service` directives so
// a rebuild knows to expect an AttachBase.
func Snapshot(sys *core.System) (*Policy, error) {
	p := &Policy{
		Levels:     sys.Lattice().Levels(),
		Categories: sys.Lattice().Categories(),
	}

	reg := sys.Registry()
	for _, name := range reg.Principals() {
		pr, err := reg.Principal(name)
		if err != nil {
			return nil, err
		}
		label, err := sys.Lattice().Format(pr.Class())
		if err != nil {
			return nil, err
		}
		p.Principals = append(p.Principals, PrincipalDecl{Name: name, ClassLabel: label})
	}
	for _, g := range reg.Groups() {
		p.Groups = append(p.Groups, g)
		members, err := reg.Members(g)
		if err != nil {
			return nil, err
		}
		for _, m := range members {
			p.Members = append(p.Members, MemberDecl{
				Group:  g,
				Member: strings.TrimPrefix(m, "@"),
			})
		}
	}

	var walkErr error
	sys.Names().Walk(func(path string, n *names.Node) {
		if walkErr != nil || path == "/" {
			return
		}
		label, err := sys.Lattice().Format(n.Class())
		if err != nil {
			walkErr = fmt.Errorf("policy: snapshot %s: %w", path, err)
			return
		}
		p.Nodes = append(p.Nodes, NodeDecl{
			Path:       path,
			Kind:       n.Kind(),
			Multilevel: n.Multilevel(),
			ClassLabel: label,
			Service:    n.Kind() == names.KindMethod && sys.Dispatcher().Registered(path),
		})
		a, err := sys.Names().ACLOf(path)
		if err != nil {
			walkErr = fmt.Errorf("policy: snapshot %s: %w", path, err)
			return
		}
		for _, e := range a.Entries() {
			p.ACLs = append(p.ACLs, ACLDecl{Path: path, Entry: e})
		}
	})
	if walkErr != nil {
		return nil, walkErr
	}
	return p, nil
}
