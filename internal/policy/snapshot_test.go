package policy

import (
	"strings"
	"testing"

	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/subject"
)

func buildOrg(t *testing.T) *core.System {
	t.Helper()
	p, err := ParseString(validOrgPolicy)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := p.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.AttachBase("/svc/fs/read", dispatch.Binding{
		Owner:   "base",
		Handler: func(ctx *subject.Context, arg any) (any, error) { return "r", nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSnapshotCapturesState(t *testing.T) {
	sys := buildOrg(t)
	snap, err := Snapshot(sys)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	text := snap.Format()
	for _, want := range []string{
		"levels others organization local",
		"categories myself dept-1 dept-2 outside",
		"principal user class local:{dept-1,dept-2,myself,outside}",
		"principal applet3 class organization:{dept-1,dept-2}",
		"group org-applets",
		"member org-applets applet1",
		"service /svc/fs/read class others", // base attached -> service
		"node /files directory multilevel class others",
		"acl /svc/fs/read allow @org-applets execute,list",
		"acl /files allow * write,list",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing %q:\n%s", want, text)
		}
	}
}

func TestSnapshotRoundTripFixedPoint(t *testing.T) {
	sys := buildOrg(t)
	snapA, err := Snapshot(sys)
	if err != nil {
		t.Fatal(err)
	}
	textA := snapA.Format()

	// Rebuild from the snapshot, re-attach the same base, and snapshot
	// again: the protection state must be a fixed point.
	sys2, err := snapA.Build(core.Options{})
	if err != nil {
		t.Fatalf("rebuild: %v\n%s", err, textA)
	}
	err = sys2.AttachBase("/svc/fs/read", dispatch.Binding{
		Owner:   "base",
		Handler: func(ctx *subject.Context, arg any) (any, error) { return "r", nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	snapB, err := Snapshot(sys2)
	if err != nil {
		t.Fatal(err)
	}
	if textB := snapB.Format(); textB != textA {
		t.Errorf("snapshot not a fixed point:\n--- A ---\n%s\n--- B ---\n%s", textA, textB)
	}

	// Decisions survive the round trip.
	ctx, err := sys2.NewContext("applet1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Call(ctx, "/svc/fs/read", nil); err != nil {
		t.Errorf("applet1 call after round trip: %v", err)
	}
	out, err := sys2.NewContext("outside")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.Call(out, "/svc/fs/read", nil); !core.IsDenied(err) {
		t.Errorf("outsider call after round trip: %v", err)
	}
}

func TestSnapshotNestedGroups(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Levels: []string{"l"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddPrincipal("a", "l"); err != nil {
		t.Fatal(err)
	}
	reg := sys.Registry()
	for _, g := range []string{"inner", "outer"} {
		if err := reg.AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.AddMember("inner", "a"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMember("outer", "inner"); err != nil {
		t.Fatal(err)
	}
	snap, err := Snapshot(sys)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := snap.Build(core.Options{})
	if err != nil {
		t.Fatalf("rebuild: %v\n%s", err, snap.Format())
	}
	p, err := sys2.Registry().Principal("a")
	if err != nil {
		t.Fatal(err)
	}
	if !p.MemberOf("outer") {
		t.Error("nested membership lost in round trip")
	}
}
