package principal

import (
	"errors"
	"fmt"
	"testing"

	"secext/internal/lattice"
)

// TestAddPrincipalsBatch checks the bulk registration path: one
// published version carries the whole batch, IDs stay dense and
// arrival-ordered, and failures leave the registry untouched.
func TestAddPrincipalsBatch(t *testing.T) {
	r, lat := newTestRegistry(t)
	c := lat.MustClass("others")
	v0 := r.Version()
	ps, err := r.AddPrincipals(c, "alice", "bob", "carol")
	if err != nil {
		t.Fatalf("AddPrincipals: %v", err)
	}
	if got := r.Version(); got != v0+1 {
		t.Errorf("batch published %d versions, want 1", got-v0)
	}
	for i, want := range []string{"alice", "bob", "carol"} {
		if ps[i].SubjectName() != want || ps[i].ID() != i {
			t.Errorf("principal %d = %s id %d", i, ps[i].SubjectName(), ps[i].ID())
		}
		if _, err := r.Principal(want); err != nil {
			t.Errorf("lookup %s: %v", want, err)
		}
	}

	// All-or-nothing: a duplicate anywhere in the batch registers nothing.
	vBefore := r.Version()
	for _, batch := range [][]string{
		{"dave", "alice"},        // collides with an existing principal
		{"dave", "erin", "dave"}, // duplicate inside the batch
		{"dave", "bad name"},     // invalid name
	} {
		if _, err := r.AddPrincipals(c, batch...); err == nil {
			t.Errorf("batch %v: want error", batch)
		}
		if _, err := r.Principal("dave"); !errors.Is(err, ErrNotFound) {
			t.Errorf("batch %v: partial insert survived: %v", batch, err)
		}
	}
	if err := r.AddGroup("staff"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddPrincipals(c, "dave", "staff"); !errors.Is(err, ErrExists) {
		t.Errorf("principal shadowing group: got %v", err)
	}
	if _, err := r.Principal("dave"); !errors.Is(err, ErrNotFound) {
		t.Error("partial insert survived group collision")
	}
	if got := r.Version(); got != vBefore+1 { // only AddGroup published
		t.Errorf("failed batches published versions: %d -> %d", vBefore, got)
	}

	// Empty batch is a no-op; a foreign-lattice class is rejected.
	if ps, err := r.AddPrincipals(c); err != nil || ps != nil {
		t.Errorf("empty batch: %v %v", ps, err)
	}
	other, err := lattice.NewWithUniverse([]string{"lo", "hi"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddPrincipals(other.MustClass("lo"), "zed"); !errors.Is(err, ErrInvalidClass) {
		t.Errorf("foreign class: got %v", err)
	}

	// The next ID continues the dense sequence.
	next, err := r.AddPrincipal("dave", c)
	if err != nil {
		t.Fatal(err)
	}
	if next.ID() != 3 {
		t.Errorf("post-batch ID = %d, want 3", next.ID())
	}
}

// TestAddGroupsBatch checks bulk group registration: one full freeze
// for the batch, all-or-nothing on collisions.
func TestAddGroupsBatch(t *testing.T) {
	r, lat := newTestRegistry(t)
	if _, err := r.AddPrincipal("alice", lat.MustClass("others")); err != nil {
		t.Fatal(err)
	}
	full0 := r.FreezeCounts().Full
	if err := r.AddGroups("staff", "admins", "ops"); err != nil {
		t.Fatalf("AddGroups: %v", err)
	}
	if got := r.FreezeCounts().Full - full0; got != 1 {
		t.Errorf("batch paid %d full freezes, want 1", got)
	}
	if got := r.Groups(); len(got) != 3 {
		t.Errorf("Groups = %v", got)
	}
	for _, batch := range [][]string{
		{"dev", "staff"},     // collides with an existing group
		{"dev", "qa", "dev"}, // duplicate inside the batch
		{"dev", "alice"},     // collides with a principal
	} {
		if err := r.AddGroups(batch...); !errors.Is(err, ErrExists) {
			t.Errorf("batch %v: got %v", batch, err)
		}
		if r.Freeze().HasGroup("dev") {
			t.Errorf("batch %v: partial insert survived", batch)
		}
	}
	if err := r.AddGroups(); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestAddMembershipsBulk checks the cross-group bulk grant: one
// version for the whole map, rollback on failure, and membership rows
// identical to what per-group AddMembers would have produced.
func TestAddMembershipsBulk(t *testing.T) {
	r, lat := newTestRegistry(t)
	c := lat.MustClass("others")
	if _, err := r.AddPrincipals(c, "alice", "bob", "carol", "dave"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddGroups("staff", "admins", "everyone"); err != nil {
		t.Fatal(err)
	}
	v0 := r.Version()
	v, err := r.AddMemberships(map[string][]string{
		"staff":    {"alice", "bob"},
		"admins":   {"carol"},
		"everyone": {"dave"},
	})
	if err != nil {
		t.Fatalf("AddMemberships: %v", err)
	}
	if v != r.Version() || v != v0+1 {
		t.Errorf("bulk grant landed at %d (registry %d, before %d)", v, r.Version(), v0)
	}
	for _, tc := range []struct {
		p, g string
		want bool
	}{
		{"alice", "staff", true}, {"bob", "staff", true},
		{"carol", "admins", true}, {"dave", "everyone", true},
		{"alice", "admins", false}, {"dave", "staff", false},
	} {
		if got := r.IsMember(tc.p, tc.g); got != tc.want {
			t.Errorf("IsMember(%s, %s) = %v", tc.p, tc.g, got)
		}
	}

	// Nested group grants work through the same map.
	if _, err := r.AddMemberships(map[string][]string{"everyone": {"staff"}}); err != nil {
		t.Fatal(err)
	}
	if !r.IsMember("alice", "everyone") {
		t.Error("nested grant missing from closure")
	}

	// Rollback: an unknown member anywhere undoes every prior edit.
	vBefore := r.Version()
	if _, err := r.AddMemberships(map[string][]string{
		"admins": {"alice"},
		"staff":  {"nobody"},
	}); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown member: got %v", err)
	}
	if r.IsMember("alice", "admins") {
		t.Error("rolled-back grant is visible")
	}
	if r.Version() != vBefore {
		t.Error("failed bulk grant published a version")
	}

	// Empty and all-empty maps are no-ops returning version 0.
	if v, err := r.AddMemberships(nil); err != nil || v != 0 {
		t.Errorf("nil map: %d %v", v, err)
	}
	if v, err := r.AddMemberships(map[string][]string{"staff": nil}); err != nil || v != 0 {
		t.Errorf("all-empty map: %d %v", v, err)
	}
}

// TestBulkMatchesPerEntityRows populates one registry through the
// batch APIs and another through per-entity calls and demands
// identical closures — the bulk freeze walks membership edges while
// small freezes walk dirty principals (see freezeLocked), and both
// orders must compute the same rows.
func TestBulkMatchesPerEntityRows(t *testing.T) {
	const principals, groups = 96, 8
	lat, err := lattice.NewWithUniverse([]string{"lo", "hi"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := lat.MustClass("lo")
	pname := func(i int) string { return fmt.Sprintf("p%03d", i) }
	gname := func(g int) string { return fmt.Sprintf("g%d", g) }

	bulk, single := NewRegistry(lat), NewRegistry(lat)
	names := make([]string, principals)
	gnames := make([]string, groups)
	grants := make(map[string][]string, groups)
	for i := range names {
		names[i] = pname(i)
		grants[gname(i%groups)] = append(grants[gname(i%groups)], pname(i))
	}
	for g := range gnames {
		gnames[g] = gname(g)
	}
	if _, err := bulk.AddPrincipals(c, names...); err != nil {
		t.Fatal(err)
	}
	if err := bulk.AddGroups(gnames...); err != nil {
		t.Fatal(err)
	}
	if _, err := bulk.AddMemberships(grants); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := single.AddPrincipal(n, c); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range gnames {
		if err := single.AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < principals; i++ {
		if err := single.AddMember(gname(i%groups), pname(i)); err != nil {
			t.Fatal(err)
		}
	}
	// One small edit on top of the bulk registry exercises the
	// dirty-principal walk after the edge walk populated the tables.
	if err := bulk.AddMember(gname(0), pname(1)); err != nil {
		t.Fatal(err)
	}
	if err := single.AddMember(gname(0), pname(1)); err != nil {
		t.Fatal(err)
	}

	fb, fs := bulk.Freeze(), single.Freeze()
	for i := 0; i < principals; i++ {
		for g := 0; g < groups; g++ {
			if b, s := fb.IsMember(pname(i), gname(g)), fs.IsMember(pname(i), gname(g)); b != s {
				t.Fatalf("IsMember(%s, %s): bulk %v, single %v", pname(i), gname(g), b, s)
			}
		}
		if b, ok := fb.PrincipalID(pname(i)); !ok || b != i {
			t.Fatalf("bulk ID of %s = %d", pname(i), b)
		}
	}
	for g := 0; g < groups; g++ {
		b, s := fb.GroupPrincipalIDs(gname(g)), fs.GroupPrincipalIDs(gname(g))
		for w := range b {
			if b[w] != s[w] {
				t.Fatalf("group %s reverse-index word %d: bulk %x, single %x", gname(g), w, b[w], s[w])
			}
		}
	}
}
