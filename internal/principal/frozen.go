package principal

import (
	"fmt"
	"sort"
)

// groupset is a bit vector over the frozen registry's group indices:
// bit i set means membership in the group with index i. Sets are built
// once at freeze time and never mutated, so testing membership is one
// bounds check and one AND — no locks, no lazy computation, no maps of
// maps.
type groupset []uint64

func newGroupset(n int) groupset { return make(groupset, (n+63)/64) }

func (s groupset) set(i int) { s[i/64] |= 1 << uint(i%64) }

func (s groupset) has(i int) bool {
	w := i / 64
	return w < len(s) && s[w]&(1<<uint(i%64)) != 0
}

// union folds o into s (same length by construction).
func (s groupset) union(o groupset) {
	for i, w := range o {
		s[i] |= w
	}
}

// frozenGroup is one group's direct membership as of the freeze.
type frozenGroup struct {
	principals []string // sorted
	subgroups  []string // sorted
}

// Frozen is one immutable version of the principal/group registry: the
// identity tables and the *transitively closed* group membership as of
// one publication. Every query on a Frozen is a pure lookup — the
// closure is precomputed into per-principal bitsets at freeze time, so
// IsMember costs two map probes and a bit test, with no locks and no
// memoization races.
//
// Frozen is the registry's contribution to a policy epoch (see
// names.Epoch): a reference monitor that pins an epoch evaluates every
// group-ACL entry against this closed membership, so a concurrent
// revocation can never split a decision — the decision sees wholly the
// pre-revocation or wholly the post-revocation registry.
//
// Frozen implements acl.Membership.
type Frozen struct {
	reg        *Registry
	version    uint64
	principals map[string]*Principal
	groups     map[string]*frozenGroup
	groupNames []string       // sorted; index = bit position
	groupIdx   map[string]int // name -> bit position
	membership map[string]groupset

	// super maps every group to the set of groups reachable from it
	// through "contained in" edges, itself included. It is the
	// intermediate of the transitive closure, retained so an
	// incremental freeze can recompute one principal's membership as a
	// union of supersets without re-walking the subgroup graph. Valid
	// for exactly this version's group structure: any structural change
	// (new group, subgroup edge added or removed) forces a full
	// rebuild.
	super map[string]groupset

	// deltaBase is the version this view was incrementally derived
	// from by cloning and patching only the touched principals' rows;
	// 0 means the closure was rebuilt from scratch. See
	// names.FrozenShard.
	deltaBase uint64
}

// Version returns the registry version this view was published as.
// Versions start at 1 and advance by one per mutation.
func (f *Frozen) Version() uint64 { return f.version }

// DeltaBase returns the version this view was incrementally derived
// from, or 0 if the membership closure was rebuilt from scratch.
func (f *Frozen) DeltaBase() uint64 { return f.deltaBase }

// Registry returns the registry this view was frozen from.
func (f *Frozen) Registry() *Registry { return f.reg }

// Principal looks up a principal by name.
func (f *Frozen) Principal(name string) (*Principal, error) {
	p, ok := f.principals[name]
	if !ok {
		return nil, fmt.Errorf("%w: principal %q", ErrNotFound, name)
	}
	return p, nil
}

// HasPrincipal reports whether the named principal exists in this
// version.
func (f *Frozen) HasPrincipal(name string) bool {
	_, ok := f.principals[name]
	return ok
}

// HasGroup reports whether the named group exists in this version.
func (f *Frozen) HasGroup(name string) bool {
	_, ok := f.groups[name]
	return ok
}

// Principals returns all principal names, sorted.
func (f *Frozen) Principals() []string {
	out := make([]string, 0, len(f.principals))
	for n := range f.principals {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Groups returns all group names, sorted.
func (f *Frozen) Groups() []string {
	return append([]string(nil), f.groupNames...)
}

// Members returns the direct members of a group: principal names and
// group names (prefixed "@"), sorted.
func (f *Frozen) Members(groupName string) ([]string, error) {
	g, ok := f.groups[groupName]
	if !ok {
		return nil, fmt.Errorf("%w: group %q", ErrNotFound, groupName)
	}
	out := make([]string, 0, len(g.principals)+len(g.subgroups))
	out = append(out, g.principals...)
	for _, s := range g.subgroups {
		out = append(out, "@"+s)
	}
	sort.Strings(out)
	return out, nil
}

// IsMember reports whether the named principal is a transitive member
// of the named group in this version of the registry. Unknown
// principals or groups are simply not members. The query is pure: one
// index probe, one closure probe, one bit test.
//
// IsMember's (subject, group) signature satisfies acl.Membership, so a
// pinned Frozen can drive ACL evaluation directly.
func (f *Frozen) IsMember(principalName, groupName string) bool {
	idx, ok := f.groupIdx[groupName]
	if !ok {
		return false
	}
	return f.membership[principalName].has(idx)
}

// GroupsOf returns every group the principal transitively belongs to,
// sorted.
func (f *Frozen) GroupsOf(principalName string) []string {
	set := f.membership[principalName]
	var out []string
	for i, name := range f.groupNames {
		if set.has(i) {
			out = append(out, name)
		}
	}
	return out // groupNames is sorted, so out is too
}
