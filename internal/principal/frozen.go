package principal

import (
	"fmt"
	"sort"
)

// groupset is a bit vector over the frozen registry's group indices:
// bit i set means membership in the group with index i. Sets are built
// once at freeze time and never mutated, so testing membership is one
// bounds check and one AND — no locks, no lazy computation, no maps of
// maps.
type groupset []uint64

func newGroupset(n int) groupset { return make(groupset, (n+63)/64) }

func (s groupset) set(i int) { s[i/64] |= 1 << uint(i%64) }

// clear removes bit i if it is in range (a short set simply lacks it).
func (s groupset) clear(i int) {
	if w := i / 64; w < len(s) {
		s[w] &^= 1 << uint(i%64)
	}
}

// cloneGrown copies s into a fresh set wide enough to hold bit i.
func (s groupset) cloneGrown(i int) groupset {
	n := len(s)
	if need := i/64 + 1; need > n {
		n = need
	}
	out := make(groupset, n)
	copy(out, s)
	return out
}

func (s groupset) has(i int) bool {
	w := i / 64
	return w < len(s) && s[w]&(1<<uint(i%64)) != 0
}

// union folds o into s (same length by construction).
func (s groupset) union(o groupset) {
	for i, w := range o {
		s[i] |= w
	}
}

// frozenGroup is one group's direct membership as of the freeze.
type frozenGroup struct {
	principals []string // sorted
	subgroups  []string // sorted
}

// Frozen is one immutable version of the principal/group registry: the
// identity tables and the *transitively closed* group membership as of
// one publication. Every query on a Frozen is a pure lookup — the
// closure is precomputed into per-principal bitsets at freeze time, so
// IsMember costs two map probes and a bit test, with no locks and no
// memoization races.
//
// Frozen is the registry's contribution to a policy epoch (see
// names.Epoch): a reference monitor that pins an epoch evaluates every
// group-ACL entry against this closed membership, so a concurrent
// revocation can never split a decision — the decision sees wholly the
// pre-revocation or wholly the post-revocation registry.
//
// Frozen implements acl.Membership.
type Frozen struct {
	reg        *Registry
	version    uint64
	principals map[string]*Principal
	groups     map[string]*frozenGroup
	groupNames []string       // sorted; index = bit position
	groupIdx   map[string]int // name -> bit position
	membership map[string]groupset

	// groupMembers is the reverse index of membership: one bitset per
	// group (indexed like groupNames) whose bit p is set when the
	// principal with dense ID p is a transitive member. It is what lets
	// freeze-time ACL compilation turn a group entry into principal-ID
	// bits without touching names (see acl.IDResolver). Rows are
	// copy-on-write: an incremental freeze clones only the rows whose
	// member sets actually changed.
	groupMembers []groupset

	// super maps every group to the set of groups reachable from it
	// through "contained in" edges, itself included. It is the
	// intermediate of the transitive closure, retained so an
	// incremental freeze can recompute one principal's membership as a
	// union of supersets without re-walking the subgroup graph. Valid
	// for exactly this version's group structure: any structural change
	// (new group, subgroup edge added or removed) forces a full
	// rebuild.
	super map[string]groupset

	// deltaBase is the version this view was incrementally derived
	// from by cloning and patching only the touched principals' rows;
	// 0 means the closure was rebuilt from scratch. See
	// names.FrozenShard.
	deltaBase uint64
}

// Version returns the registry version this view was published as.
// Versions start at 1 and advance by one per mutation.
func (f *Frozen) Version() uint64 { return f.version }

// DeltaBase returns the version this view was incrementally derived
// from, or 0 if the membership closure was rebuilt from scratch.
func (f *Frozen) DeltaBase() uint64 { return f.deltaBase }

// Registry returns the registry this view was frozen from.
func (f *Frozen) Registry() *Registry { return f.reg }

// Principal looks up a principal by name.
func (f *Frozen) Principal(name string) (*Principal, error) {
	p, ok := f.principals[name]
	if !ok {
		return nil, fmt.Errorf("%w: principal %q", ErrNotFound, name)
	}
	return p, nil
}

// HasPrincipal reports whether the named principal exists in this
// version.
func (f *Frozen) HasPrincipal(name string) bool {
	_, ok := f.principals[name]
	return ok
}

// HasGroup reports whether the named group exists in this version.
func (f *Frozen) HasGroup(name string) bool {
	_, ok := f.groups[name]
	return ok
}

// Principals returns all principal names, sorted.
func (f *Frozen) Principals() []string {
	out := make([]string, 0, len(f.principals))
	for n := range f.principals {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Groups returns all group names, sorted.
func (f *Frozen) Groups() []string {
	return append([]string(nil), f.groupNames...)
}

// Members returns the direct members of a group: principal names and
// group names (prefixed "@"), sorted.
func (f *Frozen) Members(groupName string) ([]string, error) {
	g, ok := f.groups[groupName]
	if !ok {
		return nil, fmt.Errorf("%w: group %q", ErrNotFound, groupName)
	}
	out := make([]string, 0, len(g.principals)+len(g.subgroups))
	out = append(out, g.principals...)
	for _, s := range g.subgroups {
		out = append(out, "@"+s)
	}
	sort.Strings(out)
	return out, nil
}

// IsMember reports whether the named principal is a transitive member
// of the named group in this version of the registry. Unknown
// principals or groups are simply not members. The query is pure: one
// index probe, one closure probe, one bit test.
//
// IsMember's (subject, group) signature satisfies acl.Membership, so a
// pinned Frozen can drive ACL evaluation directly.
func (f *Frozen) IsMember(principalName, groupName string) bool {
	idx, ok := f.groupIdx[groupName]
	if !ok {
		return false
	}
	return f.membership[principalName].has(idx)
}

// PrincipalID returns the dense, append-only ID of the named principal.
// IDs are assigned in arrival order at registration and never reused or
// reassigned, so an ID obtained from any frozen version names the same
// principal in every other version that contains it. Together with
// GroupPrincipalIDs and NumPrincipalIDs this satisfies acl.IDResolver.
func (f *Frozen) PrincipalID(name string) (int, bool) {
	p, ok := f.principals[name]
	if !ok {
		return 0, false
	}
	return p.id, true
}

// NumPrincipalIDs reports how many principal IDs this version has
// allocated; IDs are dense in 0..N-1.
func (f *Frozen) NumPrincipalIDs() int { return len(f.principals) }

// GroupPrincipalIDs returns the transitive member set of the named
// group as bitset words over principal IDs (bit p == principal with ID
// p), nil for an unknown group. The returned words are shared with the
// frozen view and must not be mutated.
func (f *Frozen) GroupPrincipalIDs(group string) []uint64 {
	idx, ok := f.groupIdx[group]
	if !ok || idx >= len(f.groupMembers) {
		return nil
	}
	return f.groupMembers[idx]
}

// GroupsOf returns every group the principal transitively belongs to,
// sorted.
func (f *Frozen) GroupsOf(principalName string) []string {
	set := f.membership[principalName]
	var out []string
	for i, name := range f.groupNames {
		if set.has(i) {
			out = append(out, name)
		}
	}
	return out // groupNames is sorted, so out is too
}
