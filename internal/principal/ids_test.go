package principal

import (
	"fmt"
	"math/rand"
	"testing"
)

// idHas reports whether bit id is set in raw reverse-index words.
func idHas(words []uint64, id int) bool {
	w := id / 64
	return w < len(words) && words[w]&(1<<uint(id%64)) != 0
}

// checkReverseIndex asserts the reverse index (GroupPrincipalIDs)
// agrees with the forward closure (IsMember) for every principal and
// group of a frozen view.
func checkReverseIndex(t *testing.T, f *Frozen) {
	t.Helper()
	for _, g := range f.Groups() {
		words := f.GroupPrincipalIDs(g)
		for _, p := range f.Principals() {
			id, ok := f.PrincipalID(p)
			if !ok {
				t.Fatalf("v%d: principal %q has no ID", f.Version(), p)
			}
			if got, want := idHas(words, id), f.IsMember(p, g); got != want {
				t.Fatalf("v%d: reverse index says %v for (%s in %s), IsMember says %v",
					f.Version(), got, p, g, want)
			}
		}
	}
}

func TestPrincipalIDsDenseAndStable(t *testing.T) {
	reg, lat := newTestRegistry(t)
	pub := lat.MustClass("others")

	var ps []*Principal
	for i := 0; i < 70; i++ {
		p, err := reg.AddPrincipal(fmt.Sprintf("p%02d", i), pub)
		if err != nil {
			t.Fatal(err)
		}
		if p.ID() != i {
			t.Fatalf("p%02d got ID %d, want arrival order %d", i, p.ID(), i)
		}
		ps = append(ps, p)
	}
	f := reg.Freeze()
	if f.NumPrincipalIDs() != 70 {
		t.Fatalf("NumPrincipalIDs = %d, want 70", f.NumPrincipalIDs())
	}
	for i, p := range ps {
		id, ok := f.PrincipalID(p.SubjectName())
		if !ok || id != i {
			t.Fatalf("PrincipalID(%s) = %d,%v, want %d,true", p.SubjectName(), id, ok, i)
		}
	}
	if _, ok := f.PrincipalID("nosuch"); ok {
		t.Fatal("unknown principal resolved")
	}

	// IDs must survive membership churn: the same frozen principal
	// value (and so the same ID) is shared by later versions.
	if err := reg.AddGroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMember("g", "p42"); err != nil {
		t.Fatal(err)
	}
	f2 := reg.Freeze()
	if id, ok := f2.PrincipalID("p42"); !ok || id != 42 {
		t.Fatalf("ID drifted after churn: %d,%v", id, ok)
	}
	if !idHas(f2.GroupPrincipalIDs("g"), 42) {
		t.Fatal("reverse index missing p42 in g")
	}
	if f.GroupPrincipalIDs("g") != nil {
		t.Fatal("older version leaked a later group")
	}
	if f2.GroupPrincipalIDs("nosuch") != nil {
		t.Fatal("unknown group returned words")
	}
}

// TestGroupMembersMatchesClosure drives a randomized mutation sequence
// (principals, groups, nested groups, adds, removes, bulk ops) with the
// incremental freeze path on and asserts after every publication that
// the reverse index exactly mirrors the transitive closure — and that a
// full rebuild of the same builder state produces an equivalent index.
func TestGroupMembersMatchesClosure(t *testing.T) {
	reg, lat := newTestRegistry(t)
	pub := lat.MustClass("others")
	rng := rand.New(rand.NewSource(11))

	var principals, groups []string
	for step := 0; step < 250; step++ {
		switch op := rng.Intn(10); {
		case op == 0 || len(principals) == 0:
			name := fmt.Sprintf("p%d", len(principals))
			if _, err := reg.AddPrincipal(name, pub); err != nil {
				t.Fatal(err)
			}
			principals = append(principals, name)
		case op == 1 || len(groups) == 0:
			name := fmt.Sprintf("g%d", len(groups))
			if err := reg.AddGroup(name); err != nil {
				t.Fatal(err)
			}
			groups = append(groups, name)
		case op == 2 && len(groups) >= 2:
			// Nested group edge; cycles are rejected, which is fine.
			reg.AddMember(groups[rng.Intn(len(groups))], groups[rng.Intn(len(groups))])
		case op <= 5:
			reg.AddMember(groups[rng.Intn(len(groups))], principals[rng.Intn(len(principals))])
		case op <= 7:
			reg.RemoveMember(groups[rng.Intn(len(groups))], principals[rng.Intn(len(principals))])
		case op == 8:
			var batch []string
			for i := 0; i < 3 && len(principals) > 0; i++ {
				batch = append(batch, principals[rng.Intn(len(principals))])
			}
			reg.AddMembers(groups[rng.Intn(len(groups))], batch...)
		default:
			reg.Touch()
		}
		checkReverseIndex(t, reg.Freeze())
	}

	// The final incremental chain must match a from-scratch rebuild.
	inc := reg.Freeze()
	reg.SetIncrementalFreeze(false)
	reg.Touch()
	full := reg.Freeze()
	if full.DeltaBase() != 0 {
		t.Fatal("expected a full rebuild")
	}
	for _, g := range full.Groups() {
		iw, fw := inc.GroupPrincipalIDs(g), full.GroupPrincipalIDs(g)
		for _, p := range full.Principals() {
			id, _ := full.PrincipalID(p)
			if idHas(iw, id) != idHas(fw, id) {
				t.Fatalf("incremental and full reverse indexes disagree on (%s in %s)", p, g)
			}
		}
	}
}
