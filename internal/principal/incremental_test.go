package principal

import (
	"errors"
	"fmt"
	"testing"
)

// membershipMatrix renders the full transitive membership relation of a
// frozen view as a comparable map, for equivalence checks between the
// incremental and from-scratch freeze paths.
func membershipMatrix(f *Frozen) map[string]bool {
	out := make(map[string]bool)
	for _, p := range f.Principals() {
		for _, g := range f.Groups() {
			out[p+"∈"+g] = f.IsMember(p, g)
		}
	}
	return out
}

func matrixEqual(t *testing.T, r *Registry, context string) {
	t.Helper()
	inc := membershipMatrix(r.Freeze())
	// Force a from-scratch rebuild of the same registry state and
	// compare the closures entry by entry.
	r.SetIncrementalFreeze(false)
	r.Touch()
	full := membershipMatrix(r.Freeze())
	r.SetIncrementalFreeze(true)
	if len(inc) != len(full) {
		t.Fatalf("%s: matrix sizes differ: %d vs %d", context, len(inc), len(full))
	}
	for k, v := range full {
		if inc[k] != v {
			t.Errorf("%s: incremental and full closures disagree on %s: %v vs %v", context, k, inc[k], v)
		}
	}
}

// TestIncrementalFreezeMatchesFullRebuild drives a mixed mutation
// sequence — membership edits (incremental), structural changes (full
// rebuild), bulk ops, rollback-inducing failures — and after every step
// asserts the incrementally patched closure is identical to one rebuilt
// from scratch.
func TestIncrementalFreezeMatchesFullRebuild(t *testing.T) {
	r, lat := newTestRegistry(t)
	bot, _ := lat.Bottom()
	for i := 0; i < 6; i++ {
		if _, err := r.AddPrincipal(fmt.Sprintf("p%d", i), bot); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range []string{"g0", "g1", "g2"} {
		if err := r.AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	// Nest g0 ⊂ g1 ⊂ g2 so membership edits in g0 must propagate to the
	// supersets through the retained reach-up sets.
	if err := r.AddMember("g1", "g0"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddMember("g2", "g1"); err != nil {
		t.Fatal(err)
	}
	matrixEqual(t, r, "after structure")

	steps := []struct {
		name string
		op   func() error
	}{
		{"add p0 to g0", func() error { return r.AddMember("g0", "p0") }},
		{"add p1 to g1", func() error { return r.AddMember("g1", "p1") }},
		{"add p2 to g2", func() error { return r.AddMember("g2", "p2") }},
		{"remove p0 from g0", func() error { return r.RemoveMember("g0", "p0") }},
		{"bulk add", func() error { _, err := r.AddMembers("g0", "p3", "p4", "p5"); return err }},
		{"bulk remove", func() error { _, err := r.RemoveMembers("g0", "p3", "p4"); return err }},
		{"new principal", func() error { _, err := r.AddPrincipal("late", bot); return err }},
		{"late joins g2", func() error { return r.AddMember("g2", "late") }},
		{"new group forces rebuild", func() error { return r.AddGroup("g3") }},
		{"subgroup edge forces rebuild", func() error { return r.AddMember("g3", "g2") }},
		{"edit after rebuild", func() error { return r.AddMember("g0", "p0") }},
		{"remove subgroup edge", func() error { return r.RemoveMember("g3", "g2") }},
	}
	for _, s := range steps {
		if err := s.op(); err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		matrixEqual(t, r, s.name)
	}
}

// TestFreezeCountsClassifyMutations pins which mutations take the cheap
// incremental path and which force a from-scratch rebuild.
func TestFreezeCountsClassifyMutations(t *testing.T) {
	r, lat := newTestRegistry(t)
	bot, _ := lat.Bottom()
	if _, err := r.AddPrincipal("alice", bot); err != nil {
		t.Fatal(err)
	}
	if err := r.AddGroup("g"); err != nil {
		t.Fatal(err)
	}
	base := r.FreezeCounts()

	// Membership edits: incremental.
	if err := r.AddMember("g", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveMember("g", "alice"); err != nil {
		t.Fatal(err)
	}
	// New principal: incremental (one new empty row).
	if _, err := r.AddPrincipal("bob", bot); err != nil {
		t.Fatal(err)
	}
	st := r.FreezeCounts()
	if inc := st.Incremental - base.Incremental; inc != 3 {
		t.Errorf("incremental freezes = %d, want 3", inc)
	}
	if st.Full != base.Full {
		t.Errorf("membership edits took %d full rebuilds", st.Full-base.Full)
	}

	// Structural change: full rebuild.
	if err := r.AddGroup("h"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddMember("h", "g"); err != nil {
		t.Fatal(err)
	}
	st2 := r.FreezeCounts()
	if full := st2.Full - st.Full; full != 2 {
		t.Errorf("structural changes took %d full rebuilds, want 2", full)
	}

	// Incremental disabled: everything rebuilds.
	r.SetIncrementalFreeze(false)
	if err := r.AddMember("g", "bob"); err != nil {
		t.Fatal(err)
	}
	st3 := r.FreezeCounts()
	if st3.Full != st2.Full+1 || st3.Incremental != st2.Incremental {
		t.Errorf("disabled incremental: %+v -> %+v", st2, st3)
	}
}

// TestBulkMembershipAtomic: a bulk op with one bad member applies
// nothing — the registry version does not move and no partial
// membership leaks — while a good bulk op lands every member in ONE
// version.
func TestBulkMembershipAtomic(t *testing.T) {
	r, lat := newTestRegistry(t)
	bot, _ := lat.Bottom()
	for _, p := range []string{"a", "b", "c"} {
		if _, err := r.AddPrincipal(p, bot); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddGroup("g"); err != nil {
		t.Fatal(err)
	}

	v0 := r.Version()
	v, err := r.AddMembers("g", "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	if v != v0+1 {
		t.Fatalf("bulk add landed in version %d, want %d", v, v0+1)
	}
	for _, p := range []string{"a", "b", "c"} {
		if !r.Freeze().IsMember(p, "g") {
			t.Fatalf("%s missing after bulk add", p)
		}
	}

	// Rollback: "ghost" is unknown, so a and the removal of b must both
	// be undone.
	v1 := r.Version()
	if _, err := r.AddMembers("g", "a", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bulk add with unknown member: %v", err)
	}
	if r.Version() != v1 {
		t.Fatalf("failed bulk add moved version %d -> %d", v1, r.Version())
	}
	if _, err := r.RemoveMembers("g", "b", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bulk remove with unknown member: %v", err)
	}
	if r.Version() != v1 || !r.Freeze().IsMember("b", "g") {
		t.Fatal("failed bulk remove partially applied")
	}
	// Empty bulk ops are free.
	if v, err := r.AddMembers("g"); err != nil || v != 0 {
		t.Fatalf("empty bulk add: v=%d err=%v", v, err)
	}
	if v, err := r.RemoveMembers("g"); err != nil || v != 0 {
		t.Fatalf("empty bulk remove: v=%d err=%v", v, err)
	}
	if r.Version() != v1 {
		t.Fatal("empty bulk op published")
	}

	// Mixed principal/subgroup bulk op rolls back across kinds too.
	if err := r.AddGroup("sub"); err != nil {
		t.Fatal(err)
	}
	v2 := r.Version()
	if _, err := r.AddMembers("g", "sub", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("mixed bulk add: %v", err)
	}
	if r.Version() != v2 {
		t.Fatal("failed mixed bulk add published")
	}
	if ms, _ := r.Members("g"); contains(ms, "@sub") {
		t.Fatal("subgroup edge leaked from failed bulk add")
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestIncrementalSharesUntouchedRows: an incremental freeze must reuse
// the untouched principals' bitsets and only patch the dirty rows —
// that sharing is the whole point of the delta path.
func TestIncrementalSharesUntouchedRows(t *testing.T) {
	r, lat := newTestRegistry(t)
	bot, _ := lat.Bottom()
	for _, p := range []string{"hot", "cold"} {
		if _, err := r.AddPrincipal(p, bot); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddGroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddMember("g", "cold"); err != nil {
		t.Fatal(err)
	}

	before := r.Freeze()
	if err := r.AddMember("g", "hot"); err != nil {
		t.Fatal(err)
	}
	after := r.Freeze()
	if after.DeltaBase() != before.Version() {
		t.Fatalf("delta base %d, want %d", after.DeltaBase(), before.Version())
	}
	// The frozen group tables must share untouched entries with the
	// previous view, and cold's row must be the same slice.
	bm, am := before.membership["cold"], after.membership["cold"]
	if len(bm) == 0 || &bm[0] != &am[0] {
		t.Error("incremental freeze copied an untouched principal's row")
	}
	if !after.IsMember("hot", "g") || !after.IsMember("cold", "g") {
		t.Error("patched closure wrong")
	}
	if before.IsMember("hot", "g") {
		t.Error("pinned pre-edit view mutated")
	}
}
