// Package principal manages the individuals and groups the paper's
// discretionary access control is expressed over (§2.1), plus the
// minimal authentication stub the model needs to attribute extensions to
// principals. The paper declares authentication itself out of scope; the
// stub exists only so loading an extension can name a responsible
// principal.
//
// Every principal carries a default security class (§2.2: "threads of
// control ... function at the same security class as the associated
// principal"); the reference monitor stamps that class onto the
// principal's subjects.
package principal

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"secext/internal/lattice"
)

// Errors returned by the registry.
var (
	ErrExists       = errors.New("principal: already exists")
	ErrNotFound     = errors.New("principal: not found")
	ErrCycle        = errors.New("principal: group membership cycle")
	ErrBadToken     = errors.New("principal: invalid authentication token")
	ErrInvalidClass = errors.New("principal: class from wrong lattice")
	ErrBadName      = errors.New("principal: invalid name")
)

// Principal is an individual subject identity. Principals satisfy
// acl.Subject.
type Principal struct {
	name  string
	class lattice.Class
	reg   *Registry
}

// SubjectName returns the principal's unique name.
func (p *Principal) SubjectName() string { return p.name }

// Class returns the principal's default security class.
func (p *Principal) Class() lattice.Class { return p.class }

// MemberOf reports whether the principal is a transitive member of the
// named group.
func (p *Principal) MemberOf(group string) bool {
	return p.reg.IsMember(p.name, group)
}

// Groups returns the names of all groups the principal transitively
// belongs to, sorted.
func (p *Principal) Groups() []string {
	return p.reg.groupsOf(p.name)
}

func (p *Principal) String() string {
	return fmt.Sprintf("%s@%s", p.name, p.class)
}

// group is a named set of member principals and nested member groups.
type group struct {
	principals map[string]bool
	subgroups  map[string]bool
}

// Registry is the authoritative store of principals, groups, and group
// membership. It is safe for concurrent use.
//
// Transitive membership queries are memoized per principal (experiment
// E8 shows the naive closure walk costs microseconds at deep nesting);
// any group mutation invalidates the whole cache.
type Registry struct {
	mu         sync.RWMutex
	lat        *lattice.Lattice
	principals map[string]*Principal
	groups     map[string]*group
	secret     []byte
	// closure caches principal name -> set of groups it transitively
	// belongs to. Entries are computed lazily under mu and dropped on
	// any membership mutation.
	closure map[string]map[string]bool

	// onMutate, when set, is called after every registry mutation that
	// can change an access decision (new identities, group membership
	// edits). The reference monitor wires it to the decision cache's
	// generation counter so cached verdicts never outlive a membership
	// change.
	onMutate func()
}

// NewRegistry creates an empty registry whose principals carry classes
// from lat.
func NewRegistry(lat *lattice.Lattice) *Registry {
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		// crypto/rand failure means the platform entropy source is
		// broken; tokens would be forgeable, so refuse to continue.
		panic("principal: cannot read entropy: " + err.Error())
	}
	return &Registry{
		lat:        lat,
		principals: make(map[string]*Principal),
		groups:     make(map[string]*group),
		secret:     secret,
		closure:    make(map[string]map[string]bool),
	}
}

// Lattice returns the lattice principals of this registry label against.
func (r *Registry) Lattice() *lattice.Lattice { return r.lat }

// SetMutationHook installs a function called after every mutation that
// can change an access decision. Used by the reference monitor for
// decision-cache invalidation; a nil hook clears it.
func (r *Registry) SetMutationHook(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onMutate = fn
}

// mutated invokes the mutation hook. Caller holds r.mu.
func (r *Registry) mutated() {
	if r.onMutate != nil {
		r.onMutate()
	}
}

func validName(name string) error {
	if name == "" || name == "*" || strings.ContainsAny(name, "@ \t\n;/") {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// AddPrincipal registers a new principal with the given default class.
func (r *Registry) AddPrincipal(name string, class lattice.Class) (*Principal, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if class.Lattice() != r.lat {
		return nil, fmt.Errorf("%w: principal %q", ErrInvalidClass, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.principals[name]; dup {
		return nil, fmt.Errorf("%w: principal %q", ErrExists, name)
	}
	if _, dup := r.groups[name]; dup {
		return nil, fmt.Errorf("%w: %q is a group", ErrExists, name)
	}
	p := &Principal{name: name, class: class, reg: r}
	r.principals[name] = p
	r.mutated()
	return p, nil
}

// Principal looks up a principal by name.
func (r *Registry) Principal(name string) (*Principal, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.principals[name]
	if !ok {
		return nil, fmt.Errorf("%w: principal %q", ErrNotFound, name)
	}
	return p, nil
}

// Principals returns all principal names, sorted.
func (r *Registry) Principals() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.principals))
	for n := range r.principals {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddGroup registers a new empty group.
func (r *Registry) AddGroup(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.groups[name]; dup {
		return fmt.Errorf("%w: group %q", ErrExists, name)
	}
	if _, dup := r.principals[name]; dup {
		return fmt.Errorf("%w: %q is a principal", ErrExists, name)
	}
	r.groups[name] = &group{
		principals: make(map[string]bool),
		subgroups:  make(map[string]bool),
	}
	r.mutated()
	return nil
}

// Groups returns all group names, sorted.
func (r *Registry) Groups() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.groups))
	for n := range r.groups {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddMember adds a principal or a group (nested) to a group. Adding a
// group member that would create a membership cycle fails with ErrCycle.
func (r *Registry) AddMember(groupName, member string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[groupName]
	if !ok {
		return fmt.Errorf("%w: group %q", ErrNotFound, groupName)
	}
	if _, isP := r.principals[member]; isP {
		g.principals[member] = true
		r.closure = make(map[string]map[string]bool)
		r.mutated()
		return nil
	}
	if _, isG := r.groups[member]; isG {
		if member == groupName || r.reachableLocked(member, groupName) {
			return fmt.Errorf("%w: %q -> %q", ErrCycle, groupName, member)
		}
		g.subgroups[member] = true
		r.closure = make(map[string]map[string]bool)
		r.mutated()
		return nil
	}
	return fmt.Errorf("%w: member %q", ErrNotFound, member)
}

// RemoveMember removes a direct member (principal or group) from a group.
func (r *Registry) RemoveMember(groupName, member string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[groupName]
	if !ok {
		return fmt.Errorf("%w: group %q", ErrNotFound, groupName)
	}
	if g.principals[member] {
		delete(g.principals, member)
		r.closure = make(map[string]map[string]bool)
		r.mutated()
		return nil
	}
	if g.subgroups[member] {
		delete(g.subgroups, member)
		r.closure = make(map[string]map[string]bool)
		r.mutated()
		return nil
	}
	return fmt.Errorf("%w: member %q of %q", ErrNotFound, member, groupName)
}

// reachableLocked reports whether group "to" is reachable from group
// "from" through subgroup edges. Caller holds r.mu.
func (r *Registry) reachableLocked(from, to string) bool {
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(cur string) bool {
		if cur == to {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		g, ok := r.groups[cur]
		if !ok {
			return false
		}
		for sub := range g.subgroups {
			if walk(sub) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// IsMember reports whether the named principal is a transitive member of
// the named group. Unknown principals or groups are simply not members.
// The first query for a principal computes and caches its full closure;
// subsequent queries are a map lookup.
func (r *Registry) IsMember(principalName, groupName string) bool {
	r.mu.RLock()
	if c, ok := r.closure[principalName]; ok {
		res := c[groupName]
		r.mu.RUnlock()
		return res
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closureLocked(principalName)[groupName]
}

// closureLocked returns (computing and caching if needed) the set of
// groups principalName transitively belongs to. Caller holds r.mu for
// writing.
func (r *Registry) closureLocked(principalName string) map[string]bool {
	if c, ok := r.closure[principalName]; ok {
		return c
	}
	set := make(map[string]bool)
	var queue []string
	for name, g := range r.groups {
		if g.principals[principalName] {
			set[name] = true
			queue = append(queue, name)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for name, g := range r.groups {
			if g.subgroups[cur] && !set[name] {
				set[name] = true
				queue = append(queue, name)
			}
		}
	}
	r.closure[principalName] = set
	return set
}

// groupsOf returns every group the principal transitively belongs to.
func (r *Registry) groupsOf(principalName string) []string {
	r.mu.Lock()
	c := r.closureLocked(principalName)
	out := make([]string, 0, len(c))
	for name := range c {
		out = append(out, name)
	}
	r.mu.Unlock()
	sort.Strings(out)
	return out
}

// Members returns the direct members of a group: principal names and
// group names (prefixed "@"), sorted.
func (r *Registry) Members(groupName string) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.groups[groupName]
	if !ok {
		return nil, fmt.Errorf("%w: group %q", ErrNotFound, groupName)
	}
	out := make([]string, 0, len(g.principals)+len(g.subgroups))
	for p := range g.principals {
		out = append(out, p)
	}
	for s := range g.subgroups {
		out = append(out, "@"+s)
	}
	sort.Strings(out)
	return out, nil
}

// IssueToken mints an authentication token for a registered principal.
// Tokens are HMAC-SHA256 over the principal name with a per-registry
// secret — a stand-in for whatever real authentication (certificates,
// signed code) a deployment would use.
func (r *Registry) IssueToken(name string) (string, error) {
	if _, err := r.Principal(name); err != nil {
		return "", err
	}
	mac := hmac.New(sha256.New, r.secret)
	mac.Write([]byte(name))
	sum := mac.Sum(nil)
	return name + "." + base64.RawURLEncoding.EncodeToString(sum), nil
}

// Authenticate verifies a token and returns the principal it names.
func (r *Registry) Authenticate(token string) (*Principal, error) {
	i := strings.LastIndexByte(token, '.')
	if i < 0 {
		return nil, ErrBadToken
	}
	name, sig := token[:i], token[i+1:]
	want, err := base64.RawURLEncoding.DecodeString(sig)
	if err != nil {
		return nil, ErrBadToken
	}
	mac := hmac.New(sha256.New, r.secret)
	mac.Write([]byte(name))
	if !hmac.Equal(mac.Sum(nil), want) {
		return nil, ErrBadToken
	}
	return r.Principal(name)
}
