// Package principal manages the individuals and groups the paper's
// discretionary access control is expressed over (§2.1), plus the
// minimal authentication stub the model needs to attribute extensions to
// principals. The paper declares authentication itself out of scope; the
// stub exists only so loading an extension can name a responsible
// principal.
//
// Every principal carries a default security class (§2.2: "threads of
// control ... function at the same security class as the associated
// principal"); the reference monitor stamps that class onto the
// principal's subjects.
//
// Concurrency design (build-then-freeze): the registry's queryable
// state is an immutable Frozen value — identity tables plus the
// transitively closed group membership, precomputed into per-principal
// bitsets — published through one atomic pointer. Readers load the
// current Frozen and perform pure lookups with zero locks; writers
// serialize on a writer-only mutex, mutate the private builder tables,
// and publish a successor version. The publish hook hands each new
// Frozen to the name server, which folds it into the next policy epoch,
// so a membership revocation reaches every future access decision in
// one atomic publication.
package principal

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"secext/internal/lattice"
)

// Errors returned by the registry.
var (
	ErrExists       = errors.New("principal: already exists")
	ErrNotFound     = errors.New("principal: not found")
	ErrCycle        = errors.New("principal: group membership cycle")
	ErrBadToken     = errors.New("principal: invalid authentication token")
	ErrInvalidClass = errors.New("principal: class from wrong lattice")
	ErrBadName      = errors.New("principal: invalid name")
)

// Principal is an individual subject identity. Principals satisfy
// acl.Subject. A Principal is immutable; the same value is shared by
// every frozen registry version that contains it.
type Principal struct {
	name  string
	class lattice.Class
	reg   *Registry
}

// SubjectName returns the principal's unique name.
func (p *Principal) SubjectName() string { return p.name }

// Class returns the principal's default security class.
func (p *Principal) Class() lattice.Class { return p.class }

// MemberOf reports whether the principal is a transitive member of the
// named group, as of the registry's current frozen version. Decisions
// that must be atomic against concurrent membership edits go through a
// pinned Frozen (the policy epoch) instead.
func (p *Principal) MemberOf(group string) bool {
	return p.reg.Freeze().IsMember(p.name, group)
}

// Groups returns the names of all groups the principal transitively
// belongs to, sorted.
func (p *Principal) Groups() []string {
	return p.reg.Freeze().GroupsOf(p.name)
}

func (p *Principal) String() string {
	return fmt.Sprintf("%s@%s", p.name, p.class)
}

// group is the builder-side form of a named set of member principals
// and nested member groups. Only writers touch it, under writeMu.
type group struct {
	principals map[string]bool
	subgroups  map[string]bool
}

// Registry is the authoritative store of principals, groups, and group
// membership. It is safe for concurrent use: reads are lock-free
// lookups on the current Frozen; mutations serialize on a writer-only
// mutex and publish a successor Frozen with the closure recomputed.
type Registry struct {
	// frozen is the atomically published current view.
	frozen  atomic.Pointer[Frozen]
	writeMu sync.Mutex

	lat    *lattice.Lattice
	secret []byte

	// Builder state; only writers touch it, under writeMu.
	principals map[string]*Principal
	groups     map[string]*group

	// onPublish, when set, receives every newly published Frozen. The
	// reference monitor wires it to the name server's typed epoch
	// transition (PublishRegistry) so a membership edit lands in the
	// policy epoch — and kills every cached verdict — before the editor
	// regains control. Guarded by writeMu.
	onPublish func(*Frozen)
}

// NewRegistry creates an empty registry whose principals carry classes
// from lat.
func NewRegistry(lat *lattice.Lattice) *Registry {
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		// crypto/rand failure means the platform entropy source is
		// broken; tokens would be forgeable, so refuse to continue.
		panic("principal: cannot read entropy: " + err.Error())
	}
	r := &Registry{
		lat:        lat,
		principals: make(map[string]*Principal),
		groups:     make(map[string]*group),
		secret:     secret,
	}
	r.frozen.Store(r.buildFrozen(1))
	return r
}

// Lattice returns the lattice principals of this registry label against.
func (r *Registry) Lattice() *lattice.Lattice { return r.lat }

// Freeze returns the currently published registry view: one atomic
// load, no locks. The returned view is immutable and stays valid
// forever; pin it to evaluate several membership questions against one
// version of the registry.
func (r *Registry) Freeze() *Frozen { return r.frozen.Load() }

// Version returns the current registry version (1 when empty, +1 per
// mutation).
func (r *Registry) Version() uint64 { return r.frozen.Load().version }

// SetPublishHook installs a function that receives every newly
// published Frozen view. The reference monitor wires it to the name
// server's PublishRegistry epoch transition; a nil hook clears it. The
// hook runs with the writer mutex held, so publications reach it in
// version order.
func (r *Registry) SetPublishHook(fn func(*Frozen)) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.onPublish = fn
}

// Touch republishes the registry's current state as a new version — a
// typed no-op mutation. Experiments use it to drive epoch-invalidation
// storms without growing the registry.
func (r *Registry) Touch() {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.publishLocked()
}

// publishLocked rebuilds the frozen view from the builder tables and
// publishes it at version+1. Caller holds writeMu.
func (r *Registry) publishLocked() {
	next := r.buildFrozen(r.frozen.Load().version + 1)
	r.frozen.Store(next)
	if r.onPublish != nil {
		r.onPublish(next)
	}
}

// buildFrozen snapshots the builder tables into an immutable view with
// the transitive closure precomputed. Group bit indices follow sorted
// group-name order, so equal registries freeze identically.
func (r *Registry) buildFrozen(version uint64) *Frozen {
	f := &Frozen{
		reg:        r,
		version:    version,
		principals: make(map[string]*Principal, len(r.principals)),
		groups:     make(map[string]*frozenGroup, len(r.groups)),
		groupNames: make([]string, 0, len(r.groups)),
		groupIdx:   make(map[string]int, len(r.groups)),
		membership: make(map[string]groupset, len(r.principals)),
	}
	for n, p := range r.principals {
		f.principals[n] = p
	}
	f.groups = f.collectGroups(r.groups)
	sort.Strings(f.groupNames)
	for i, n := range f.groupNames {
		f.groupIdx[n] = i
	}

	// Transitive closure. up[g] lists the groups that directly contain
	// group g as a subgroup; super(g) is the set of groups reachable
	// from g through up-edges, including g itself. A principal's
	// closure is the union of super(g) over every group g that lists it
	// directly. AddMember guarantees the subgroup graph is acyclic, so
	// the memoized walk terminates.
	up := make(map[string][]string, len(r.groups))
	for name, g := range r.groups {
		for sub := range g.subgroups {
			up[sub] = append(up[sub], name)
		}
	}
	super := make(map[string]groupset, len(r.groups))
	var superOf func(name string) groupset
	superOf = func(name string) groupset {
		if s, ok := super[name]; ok {
			return s
		}
		s := newGroupset(len(f.groupNames))
		s.set(f.groupIdx[name])
		super[name] = s // memoize before recursing (acyclic, but cheap insurance)
		for _, parent := range up[name] {
			s.union(superOf(parent))
		}
		return s
	}
	for pname := range r.principals {
		set := newGroupset(len(f.groupNames))
		for gname, g := range r.groups {
			if g.principals[pname] {
				set.union(superOf(gname))
			}
		}
		f.membership[pname] = set
	}
	return f
}

// collectGroups converts builder groups to their frozen form, filling
// f.groupNames as a side effect.
func (f *Frozen) collectGroups(groups map[string]*group) map[string]*frozenGroup {
	out := make(map[string]*frozenGroup, len(groups))
	for name, g := range groups {
		fg := &frozenGroup{
			principals: make([]string, 0, len(g.principals)),
			subgroups:  make([]string, 0, len(g.subgroups)),
		}
		for p := range g.principals {
			fg.principals = append(fg.principals, p)
		}
		for s := range g.subgroups {
			fg.subgroups = append(fg.subgroups, s)
		}
		sort.Strings(fg.principals)
		sort.Strings(fg.subgroups)
		out[name] = fg
		f.groupNames = append(f.groupNames, name)
	}
	return out
}

func validName(name string) error {
	if name == "" || name == "*" || strings.ContainsAny(name, "@ \t\n;/") {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// AddPrincipal registers a new principal with the given default class.
func (r *Registry) AddPrincipal(name string, class lattice.Class) (*Principal, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if class.Lattice() != r.lat {
		return nil, fmt.Errorf("%w: principal %q", ErrInvalidClass, name)
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if _, dup := r.principals[name]; dup {
		return nil, fmt.Errorf("%w: principal %q", ErrExists, name)
	}
	if _, dup := r.groups[name]; dup {
		return nil, fmt.Errorf("%w: %q is a group", ErrExists, name)
	}
	p := &Principal{name: name, class: class, reg: r}
	r.principals[name] = p
	r.publishLocked()
	return p, nil
}

// Principal looks up a principal by name.
func (r *Registry) Principal(name string) (*Principal, error) {
	return r.frozen.Load().Principal(name)
}

// Principals returns all principal names, sorted.
func (r *Registry) Principals() []string {
	return r.frozen.Load().Principals()
}

// AddGroup registers a new empty group.
func (r *Registry) AddGroup(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	if _, dup := r.groups[name]; dup {
		return fmt.Errorf("%w: group %q", ErrExists, name)
	}
	if _, dup := r.principals[name]; dup {
		return fmt.Errorf("%w: %q is a principal", ErrExists, name)
	}
	r.groups[name] = &group{
		principals: make(map[string]bool),
		subgroups:  make(map[string]bool),
	}
	r.publishLocked()
	return nil
}

// Groups returns all group names, sorted.
func (r *Registry) Groups() []string {
	return r.frozen.Load().Groups()
}

// AddMember adds a principal or a group (nested) to a group. Adding a
// group member that would create a membership cycle fails with ErrCycle.
func (r *Registry) AddMember(groupName, member string) error {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	g, ok := r.groups[groupName]
	if !ok {
		return fmt.Errorf("%w: group %q", ErrNotFound, groupName)
	}
	if _, isP := r.principals[member]; isP {
		g.principals[member] = true
		r.publishLocked()
		return nil
	}
	if _, isG := r.groups[member]; isG {
		if member == groupName || r.reachableLocked(member, groupName) {
			return fmt.Errorf("%w: %q -> %q", ErrCycle, groupName, member)
		}
		g.subgroups[member] = true
		r.publishLocked()
		return nil
	}
	return fmt.Errorf("%w: member %q", ErrNotFound, member)
}

// RemoveMember removes a direct member (principal or group) from a group.
func (r *Registry) RemoveMember(groupName, member string) error {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	g, ok := r.groups[groupName]
	if !ok {
		return fmt.Errorf("%w: group %q", ErrNotFound, groupName)
	}
	if g.principals[member] {
		delete(g.principals, member)
		r.publishLocked()
		return nil
	}
	if g.subgroups[member] {
		delete(g.subgroups, member)
		r.publishLocked()
		return nil
	}
	return fmt.Errorf("%w: member %q of %q", ErrNotFound, member, groupName)
}

// reachableLocked reports whether group "to" is reachable from group
// "from" through subgroup edges. Caller holds writeMu.
func (r *Registry) reachableLocked(from, to string) bool {
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(cur string) bool {
		if cur == to {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		g, ok := r.groups[cur]
		if !ok {
			return false
		}
		for sub := range g.subgroups {
			if walk(sub) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// IsMember reports whether the named principal is a transitive member of
// the named group in the current frozen version. Unknown principals or
// groups are simply not members.
func (r *Registry) IsMember(principalName, groupName string) bool {
	return r.frozen.Load().IsMember(principalName, groupName)
}

// Members returns the direct members of a group: principal names and
// group names (prefixed "@"), sorted.
func (r *Registry) Members(groupName string) ([]string, error) {
	return r.frozen.Load().Members(groupName)
}

// IssueToken mints an authentication token for a registered principal.
// Tokens are HMAC-SHA256 over the principal name with a per-registry
// secret — a stand-in for whatever real authentication (certificates,
// signed code) a deployment would use.
func (r *Registry) IssueToken(name string) (string, error) {
	if _, err := r.Principal(name); err != nil {
		return "", err
	}
	mac := hmac.New(sha256.New, r.secret)
	mac.Write([]byte(name))
	sum := mac.Sum(nil)
	return name + "." + base64.RawURLEncoding.EncodeToString(sum), nil
}

// Authenticate verifies a token and returns the principal it names.
func (r *Registry) Authenticate(token string) (*Principal, error) {
	i := strings.LastIndexByte(token, '.')
	if i < 0 {
		return nil, ErrBadToken
	}
	name, sig := token[:i], token[i+1:]
	want, err := base64.RawURLEncoding.DecodeString(sig)
	if err != nil {
		return nil, ErrBadToken
	}
	mac := hmac.New(sha256.New, r.secret)
	mac.Write([]byte(name))
	if !hmac.Equal(mac.Sum(nil), want) {
		return nil, ErrBadToken
	}
	return r.Principal(name)
}
