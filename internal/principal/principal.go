// Package principal manages the individuals and groups the paper's
// discretionary access control is expressed over (§2.1), plus the
// minimal authentication stub the model needs to attribute extensions to
// principals. The paper declares authentication itself out of scope; the
// stub exists only so loading an extension can name a responsible
// principal.
//
// Every principal carries a default security class (§2.2: "threads of
// control ... function at the same security class as the associated
// principal"); the reference monitor stamps that class onto the
// principal's subjects.
//
// Concurrency design (build-then-freeze): the registry's queryable
// state is an immutable Frozen value — identity tables plus the
// transitively closed group membership, precomputed into per-principal
// bitsets — published through one atomic pointer. Readers load the
// current Frozen and perform pure lookups with zero locks; writers
// serialize on a writer-only mutex, mutate the private builder tables,
// and publish a successor version. The publish hook hands each new
// Frozen to the name server, which folds it into the next policy epoch,
// so a membership revocation reaches every future access decision in
// one atomic publication.
package principal

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"secext/internal/lattice"
)

// Errors returned by the registry.
var (
	ErrExists       = errors.New("principal: already exists")
	ErrNotFound     = errors.New("principal: not found")
	ErrCycle        = errors.New("principal: group membership cycle")
	ErrBadToken     = errors.New("principal: invalid authentication token")
	ErrInvalidClass = errors.New("principal: class from wrong lattice")
	ErrBadName      = errors.New("principal: invalid name")
)

// Principal is an individual subject identity. Principals satisfy
// acl.Subject. A Principal is immutable; the same value is shared by
// every frozen registry version that contains it.
type Principal struct {
	name  string
	class lattice.Class
	reg   *Registry

	// id is the principal's dense, append-only ID: assigned in arrival
	// order at registration, never reused (there is no principal
	// removal). Freeze-time ACL compilation indexes its bitsets by this
	// ID, and the stability guarantee is what lets compiled summaries
	// that name only individuals survive registry transitions.
	id int
}

// SubjectName returns the principal's unique name.
func (p *Principal) SubjectName() string { return p.name }

// ID returns the principal's dense, append-only ID (see the field
// comment: arrival-ordered, stable across every registry version).
func (p *Principal) ID() int { return p.id }

// Class returns the principal's default security class.
func (p *Principal) Class() lattice.Class { return p.class }

// MemberOf reports whether the principal is a transitive member of the
// named group, as of the registry's current frozen version. Decisions
// that must be atomic against concurrent membership edits go through a
// pinned Frozen (the policy epoch) instead.
func (p *Principal) MemberOf(group string) bool {
	return p.reg.Freeze().IsMember(p.name, group)
}

// Groups returns the names of all groups the principal transitively
// belongs to, sorted.
func (p *Principal) Groups() []string {
	return p.reg.Freeze().GroupsOf(p.name)
}

func (p *Principal) String() string {
	return fmt.Sprintf("%s@%s", p.name, p.class)
}

// group is the builder-side form of a named set of member principals
// and nested member groups. Only writers touch it, under writeMu.
type group struct {
	principals map[string]bool
	subgroups  map[string]bool
}

// Registry is the authoritative store of principals, groups, and group
// membership. It is safe for concurrent use: reads are lock-free
// lookups on the current Frozen; mutations serialize on a writer-only
// mutex and publish a successor Frozen with the closure recomputed.
type Registry struct {
	// frozen is the atomically published current view.
	frozen  atomic.Pointer[Frozen]
	writeMu sync.Mutex

	lat    *lattice.Lattice
	secret []byte

	// Builder state; only writers touch it, under writeMu.
	principals map[string]*Principal
	groups     map[string]*group

	// Dirty state since the last freeze; only writers touch it, under
	// writeMu. dirtyPrincipals names principals whose membership rows
	// must be recomputed, dirtyGroups names groups whose direct-member
	// lists changed, and dirtyAll forces a full rebuild (set by any
	// structural change — a new group shifts bit indices, a subgroup
	// edge invalidates the retained super sets).
	dirtyPrincipals map[string]bool
	dirtyGroups     map[string]bool
	dirtyAll        bool

	// incremental enables the delta freeze path (default on);
	// SetIncrementalFreeze turns it off for experiments that price the
	// full closure rebuild.
	incremental bool

	// directMembers counts direct principal→group membership edges in
	// the builder tables. Freeze-time closure recomputation picks between
	// walking the dirty principals (cost dirty×groups) and walking the
	// membership edges (cost directMembers) by comparing the two; without
	// the counter a bulk grant over the whole population would cost
	// principals×groups hash probes. Only writers touch it, under writeMu.
	directMembers int

	// fullFreezes and incFreezes count how each published Frozen was
	// built; experiments and tests read them through FreezeStats.
	fullFreezes atomic.Uint64
	incFreezes  atomic.Uint64

	// onPublish, when set, receives every newly published Frozen and
	// returns a wait function that blocks until the view is live in the
	// receiver's published state. The reference monitor wires it to the
	// name server's batched epoch publisher (stage + flush), so a
	// membership edit lands in the policy epoch — and kills every
	// cached verdict — before the editor regains control, while
	// concurrent edits may coalesce into one epoch. Guarded by writeMu.
	onPublish func(*Frozen) func() uint64
}

// NewRegistry creates an empty registry whose principals carry classes
// from lat.
func NewRegistry(lat *lattice.Lattice) *Registry {
	secret := make([]byte, 32)
	if _, err := rand.Read(secret); err != nil {
		// crypto/rand failure means the platform entropy source is
		// broken; tokens would be forgeable, so refuse to continue.
		panic("principal: cannot read entropy: " + err.Error())
	}
	r := &Registry{
		lat:             lat,
		principals:      make(map[string]*Principal),
		groups:          make(map[string]*group),
		secret:          secret,
		dirtyPrincipals: make(map[string]bool),
		dirtyGroups:     make(map[string]bool),
		incremental:     true,
	}
	r.frozen.Store(r.buildFrozen(1))
	return r
}

// Lattice returns the lattice principals of this registry label against.
func (r *Registry) Lattice() *lattice.Lattice { return r.lat }

// Freeze returns the currently published registry view: one atomic
// load, no locks. The returned view is immutable and stays valid
// forever; pin it to evaluate several membership questions against one
// version of the registry.
func (r *Registry) Freeze() *Frozen { return r.frozen.Load() }

// Version returns the current registry version (1 when empty, +1 per
// mutation).
func (r *Registry) Version() uint64 { return r.frozen.Load().version }

// SetPublishHook installs a function that receives every newly
// published Frozen view and returns a wait function blocking until the
// view is live downstream. The reference monitor wires it to the name
// server's batched epoch publisher; a nil hook clears it. The hook runs
// with the writer mutex held, so publications reach it in version
// order; the wait function it returns is called after the mutex is
// released, so a slow downstream flush never blocks other editors from
// staging their own mutations.
func (r *Registry) SetPublishHook(fn func(*Frozen) func() uint64) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.onPublish = fn
}

// SetIncrementalFreeze enables or disables the delta freeze path.
// Incremental freezing is on by default; experiments turn it off to
// price the full closure rebuild against the patched one. Turning it
// back on is always safe: dirty tracking runs regardless, so the next
// freeze patches against an accurate baseline.
func (r *Registry) SetIncrementalFreeze(on bool) {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.incremental = on
}

// FreezeStats reports how published views were built since boot.
type FreezeStats struct {
	Full        uint64 // closure rebuilt from scratch
	Incremental uint64 // previous view cloned and patched
}

// FreezeCounts returns the full/incremental freeze counters.
func (r *Registry) FreezeCounts() FreezeStats {
	return FreezeStats{Full: r.fullFreezes.Load(), Incremental: r.incFreezes.Load()}
}

// Touch republishes the registry's current state as a new version — a
// typed no-op mutation. Experiments use it to drive epoch-invalidation
// storms without growing the registry.
func (r *Registry) Touch() {
	r.writeMu.Lock()
	wait := r.publishLocked()
	r.writeMu.Unlock()
	wait()
}

// publishLocked freezes the builder tables into a successor view at
// version+1, publishes it, and returns the wait function the mutator
// must call after releasing writeMu: it blocks until the downstream
// policy epoch carrying the view is live and returns that epoch's
// version (or the registry's own version when no hook is attached).
// Waiting outside the mutex is what lets concurrent mutations pipeline
// into one batched epoch. Caller holds writeMu.
func (r *Registry) publishLocked() func() uint64 {
	next := r.freezeLocked(r.frozen.Load().version + 1)
	r.frozen.Store(next)
	clear(r.dirtyPrincipals)
	clear(r.dirtyGroups)
	r.dirtyAll = false
	if r.onPublish != nil {
		return r.onPublish(next)
	}
	v := next.version
	return func() uint64 { return v }
}

// freezeLocked builds the successor view, patching the previous one
// when only membership rows changed (the common churn case) and
// falling back to a full rebuild on structural change. Caller holds
// writeMu.
func (r *Registry) freezeLocked(version uint64) *Frozen {
	prev := r.frozen.Load()
	if !r.incremental || r.dirtyAll || prev == nil {
		r.fullFreezes.Add(1)
		return r.buildFrozen(version)
	}
	r.incFreezes.Add(1)
	// Start as a shallow copy sharing every table with prev; clone only
	// the maps that have dirty entries. The group universe (names,
	// indices, super sets) is untouched by construction — any change to
	// it sets dirtyAll above.
	f := &Frozen{
		reg:          r,
		version:      version,
		deltaBase:    prev.version,
		principals:   prev.principals,
		groups:       prev.groups,
		groupNames:   prev.groupNames,
		groupIdx:     prev.groupIdx,
		membership:   prev.membership,
		groupMembers: prev.groupMembers,
		super:        prev.super,
	}
	if len(r.dirtyGroups) > 0 {
		groups := make(map[string]*frozenGroup, len(prev.groups))
		for k, v := range prev.groups {
			groups[k] = v
		}
		for gname := range r.dirtyGroups {
			groups[gname] = freezeGroup(r.groups[gname])
		}
		f.groups = groups
	}
	if len(r.dirtyPrincipals) > 0 {
		membership := make(map[string]groupset, len(prev.membership)+len(r.dirtyPrincipals))
		for k, v := range prev.membership {
			membership[k] = v
		}
		var principals map[string]*Principal // cloned on first new principal
		dirtySets := make(map[string]groupset, len(r.dirtyPrincipals))
		for pname := range r.dirtyPrincipals {
			if _, known := prev.principals[pname]; !known {
				if principals == nil {
					principals = make(map[string]*Principal, len(prev.principals)+1)
					for k, v := range prev.principals {
						principals[k] = v
					}
					f.principals = principals
				}
				principals[pname] = r.principals[pname]
			}
			dirtySets[pname] = newGroupset(len(f.groupNames))
		}
		// Recompute each dirty principal's closed membership as the union
		// of super sets of the groups that list it directly — identical
		// to the full rebuild's step. Two walk orders compute the same
		// rows at different cost: per-principal costs dirty×groups hash
		// probes, per-edge costs one probe per direct membership. Pick
		// the cheaper one, so a single-principal churn stays O(G) and a
		// bulk grant over the whole population stays O(edges).
		if len(dirtySets)*len(r.groups) > r.directMembers {
			for gname, g := range r.groups {
				s := f.super[gname]
				for pname := range g.principals {
					if set, dirty := dirtySets[pname]; dirty {
						set.union(s)
					}
				}
			}
		} else {
			for pname, set := range dirtySets {
				for gname, g := range r.groups {
					if g.principals[pname] {
						set.union(f.super[gname])
					}
				}
			}
		}
		for pname, set := range dirtySets {
			membership[pname] = set
		}
		f.membership = membership

		// Patch the reverse index: for each dirty principal, flip its
		// ID bit in exactly the groups whose membership changed. Rows
		// are copy-on-write — untouched groups keep sharing prev's
		// bitsets, and a row is cloned at most once per freeze.
		rowFresh := make(map[int]bool)
		for pname := range r.dirtyPrincipals {
			id := r.principals[pname].id
			old := prev.membership[pname] // nil for a new principal
			neu := membership[pname]
			for i := range f.groupNames {
				was, is := old.has(i), neu.has(i)
				if was == is {
					continue
				}
				if !rowFresh[i] {
					if len(rowFresh) == 0 {
						f.groupMembers = append([]groupset(nil), prev.groupMembers...)
					}
					f.groupMembers[i] = f.groupMembers[i].cloneGrown(id)
					rowFresh[i] = true
				} else if id/64 >= len(f.groupMembers[i]) {
					f.groupMembers[i] = f.groupMembers[i].cloneGrown(id)
				}
				if is {
					f.groupMembers[i].set(id)
				} else {
					f.groupMembers[i].clear(id)
				}
			}
		}
	}
	return f
}

// buildFrozen snapshots the builder tables into an immutable view with
// the transitive closure precomputed. Group bit indices follow sorted
// group-name order, so equal registries freeze identically.
func (r *Registry) buildFrozen(version uint64) *Frozen {
	f := &Frozen{
		reg:        r,
		version:    version,
		principals: make(map[string]*Principal, len(r.principals)),
		groups:     make(map[string]*frozenGroup, len(r.groups)),
		groupNames: make([]string, 0, len(r.groups)),
		groupIdx:   make(map[string]int, len(r.groups)),
		membership: make(map[string]groupset, len(r.principals)),
	}
	for n, p := range r.principals {
		f.principals[n] = p
	}
	f.groups = f.collectGroups(r.groups)
	sort.Strings(f.groupNames)
	for i, n := range f.groupNames {
		f.groupIdx[n] = i
	}

	// Transitive closure. up[g] lists the groups that directly contain
	// group g as a subgroup; super(g) is the set of groups reachable
	// from g through up-edges, including g itself. A principal's
	// closure is the union of super(g) over every group g that lists it
	// directly. AddMember guarantees the subgroup graph is acyclic, so
	// the memoized walk terminates.
	up := make(map[string][]string, len(r.groups))
	for name, g := range r.groups {
		for sub := range g.subgroups {
			up[sub] = append(up[sub], name)
		}
	}
	super := make(map[string]groupset, len(r.groups))
	var superOf func(name string) groupset
	superOf = func(name string) groupset {
		if s, ok := super[name]; ok {
			return s
		}
		s := newGroupset(len(f.groupNames))
		s.set(f.groupIdx[name])
		super[name] = s // memoize before recursing (acyclic, but cheap insurance)
		for _, parent := range up[name] {
			s.union(superOf(parent))
		}
		return s
	}
	// Materialize super for every group, not just the ones principals
	// sit in: the retained table is what lets the next freeze patch a
	// touched principal's row without re-walking the subgroup graph.
	for gname := range r.groups {
		superOf(gname)
	}
	f.super = super
	// Per-principal closure = union of super sets over the groups that
	// list the principal directly. Walk the membership *edges* rather
	// than the principals×groups cross product: the edge walk costs
	// O(direct memberships), where the cross product is O(P·G) hash
	// probes — the difference between seconds and milliseconds at the
	// 10^5-principal scale bench-load builds.
	for pname := range r.principals {
		f.membership[pname] = newGroupset(len(f.groupNames))
	}
	for gname, g := range r.groups {
		s := super[gname]
		for pname := range g.principals {
			f.membership[pname].union(s)
		}
	}
	// Reverse index: per-group bitsets over principal IDs. Built by
	// transposing the per-principal closure rows just computed.
	f.groupMembers = make([]groupset, len(f.groupNames))
	for i := range f.groupMembers {
		f.groupMembers[i] = newGroupset(len(r.principals))
	}
	for pname, set := range f.membership {
		id := r.principals[pname].id
		for i := range f.groupNames {
			if set.has(i) {
				f.groupMembers[i].set(id)
			}
		}
	}
	return f
}

// freezeGroup converts one builder group to its frozen (sorted) form.
func freezeGroup(g *group) *frozenGroup {
	fg := &frozenGroup{
		principals: make([]string, 0, len(g.principals)),
		subgroups:  make([]string, 0, len(g.subgroups)),
	}
	for p := range g.principals {
		fg.principals = append(fg.principals, p)
	}
	for s := range g.subgroups {
		fg.subgroups = append(fg.subgroups, s)
	}
	sort.Strings(fg.principals)
	sort.Strings(fg.subgroups)
	return fg
}

// collectGroups converts builder groups to their frozen form, filling
// f.groupNames as a side effect.
func (f *Frozen) collectGroups(groups map[string]*group) map[string]*frozenGroup {
	out := make(map[string]*frozenGroup, len(groups))
	for name, g := range groups {
		out[name] = freezeGroup(g)
		f.groupNames = append(f.groupNames, name)
	}
	return out
}

func validName(name string) error {
	if name == "" || name == "*" || strings.ContainsAny(name, "@ \t\n;/") {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return nil
}

// AddPrincipal registers a new principal with the given default class.
func (r *Registry) AddPrincipal(name string, class lattice.Class) (*Principal, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	if class.Lattice() != r.lat {
		return nil, fmt.Errorf("%w: principal %q", ErrInvalidClass, name)
	}
	r.writeMu.Lock()
	if _, dup := r.principals[name]; dup {
		r.writeMu.Unlock()
		return nil, fmt.Errorf("%w: principal %q", ErrExists, name)
	}
	if _, dup := r.groups[name]; dup {
		r.writeMu.Unlock()
		return nil, fmt.Errorf("%w: %q is a group", ErrExists, name)
	}
	p := &Principal{name: name, class: class, reg: r, id: len(r.principals)}
	r.principals[name] = p
	r.dirtyPrincipals[name] = true
	wait := r.publishLocked()
	r.writeMu.Unlock()
	wait()
	return p, nil
}

// AddPrincipals registers several principals at one default class as
// one published version: either every name registers or none does (the
// published state is untouched on failure), the closure is refrozen
// once, and one epoch carries the whole batch. Registering N principals
// one at a time costs N freezes, each cloning membership tables that
// already hold every earlier principal — quadratic in N; the batch pays
// one. Bulk population (load harnesses, snapshot replay) should always
// come through here.
func (r *Registry) AddPrincipals(class lattice.Class, names ...string) ([]*Principal, error) {
	if len(names) == 0 {
		return nil, nil
	}
	if class.Lattice() != r.lat {
		return nil, fmt.Errorf("%w: principals %q...", ErrInvalidClass, names[0])
	}
	for _, name := range names {
		if err := validName(name); err != nil {
			return nil, err
		}
	}
	r.writeMu.Lock()
	// Validate the whole batch before inserting anything, so failure
	// needs no rollback and the builder tables never hold a half batch.
	batch := make(map[string]bool, len(names))
	for _, name := range names {
		if _, dup := r.principals[name]; dup || batch[name] {
			r.writeMu.Unlock()
			return nil, fmt.Errorf("%w: principal %q", ErrExists, name)
		}
		if _, dup := r.groups[name]; dup {
			r.writeMu.Unlock()
			return nil, fmt.Errorf("%w: %q is a group", ErrExists, name)
		}
		batch[name] = true
	}
	out := make([]*Principal, len(names))
	for i, name := range names {
		p := &Principal{name: name, class: class, reg: r, id: len(r.principals)}
		r.principals[name] = p
		r.dirtyPrincipals[name] = true
		out[i] = p
	}
	wait := r.publishLocked()
	r.writeMu.Unlock()
	wait()
	return out, nil
}

// Principal looks up a principal by name.
func (r *Registry) Principal(name string) (*Principal, error) {
	return r.frozen.Load().Principal(name)
}

// Principals returns all principal names, sorted.
func (r *Registry) Principals() []string {
	return r.frozen.Load().Principals()
}

// AddGroup registers a new empty group. A new group shifts the frozen
// bit indices, so it always forces a full freeze.
func (r *Registry) AddGroup(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	r.writeMu.Lock()
	if _, dup := r.groups[name]; dup {
		r.writeMu.Unlock()
		return fmt.Errorf("%w: group %q", ErrExists, name)
	}
	if _, dup := r.principals[name]; dup {
		r.writeMu.Unlock()
		return fmt.Errorf("%w: %q is a principal", ErrExists, name)
	}
	r.groups[name] = &group{
		principals: make(map[string]bool),
		subgroups:  make(map[string]bool),
	}
	r.dirtyAll = true
	wait := r.publishLocked()
	r.writeMu.Unlock()
	wait()
	return nil
}

// AddGroups registers several new empty groups as one published
// version, all-or-nothing. Every new group shifts the frozen bit
// indices and forces a full closure rebuild, so registering N groups
// one at a time pays N full freezes; the batch pays one.
func (r *Registry) AddGroups(names ...string) error {
	if len(names) == 0 {
		return nil
	}
	for _, name := range names {
		if err := validName(name); err != nil {
			return err
		}
	}
	r.writeMu.Lock()
	batch := make(map[string]bool, len(names))
	for _, name := range names {
		if _, dup := r.groups[name]; dup || batch[name] {
			r.writeMu.Unlock()
			return fmt.Errorf("%w: group %q", ErrExists, name)
		}
		if _, dup := r.principals[name]; dup {
			r.writeMu.Unlock()
			return fmt.Errorf("%w: %q is a principal", ErrExists, name)
		}
		batch[name] = true
	}
	for _, name := range names {
		r.groups[name] = &group{
			principals: make(map[string]bool),
			subgroups:  make(map[string]bool),
		}
	}
	r.dirtyAll = true
	wait := r.publishLocked()
	r.writeMu.Unlock()
	wait()
	return nil
}

// Groups returns all group names, sorted.
func (r *Registry) Groups() []string {
	return r.frozen.Load().Groups()
}

// AddMember adds a principal or a group (nested) to a group. Adding a
// group member that would create a membership cycle fails with ErrCycle.
func (r *Registry) AddMember(groupName, member string) error {
	_, err := r.AddMemberAt(groupName, member)
	return err
}

// AddMemberAt is AddMember returning the version of the policy epoch
// (or, unattached, the registry version) the edit landed in: every
// reader observing that version or later sees the membership.
func (r *Registry) AddMemberAt(groupName, member string) (uint64, error) {
	r.writeMu.Lock()
	if _, err := r.addMemberLocked(groupName, member); err != nil {
		r.writeMu.Unlock()
		return 0, err
	}
	wait := r.publishLocked()
	r.writeMu.Unlock()
	return wait(), nil
}

// RemoveMember removes a direct member (principal or group) from a group.
func (r *Registry) RemoveMember(groupName, member string) error {
	_, err := r.RemoveMemberAt(groupName, member)
	return err
}

// RemoveMemberAt is RemoveMember returning the version of the policy
// epoch (or, unattached, the registry version) the revocation landed
// in: every decision computed against that version or later enforces
// it. This is the revocation barrier callers pin audits to.
func (r *Registry) RemoveMemberAt(groupName, member string) (uint64, error) {
	r.writeMu.Lock()
	if _, err := r.removeMemberLocked(groupName, member); err != nil {
		r.writeMu.Unlock()
		return 0, err
	}
	wait := r.publishLocked()
	r.writeMu.Unlock()
	return wait(), nil
}

// AddMembers adds several members to one group as one published
// version: all edits are applied atomically (on the first failure every
// prior edit is rolled back and the published state is untouched), the
// closure is refrozen once, and one epoch carries the whole batch — N
// grants for one freeze instead of N. It returns the version the batch
// landed in. An empty member list is a no-op returning 0.
func (r *Registry) AddMembers(groupName string, members ...string) (uint64, error) {
	if len(members) == 0 {
		return 0, nil
	}
	r.writeMu.Lock()
	inserted := make([]string, 0, len(members))
	for _, m := range members {
		ins, err := r.addMemberLocked(groupName, m)
		if err != nil {
			for _, u := range inserted {
				// Roll back only true inserts; the over-marked dirty
				// state recomputes to identical rows, so it is harmless.
				r.removeMemberLocked(groupName, u)
			}
			r.writeMu.Unlock()
			return 0, err
		}
		if ins {
			inserted = append(inserted, m)
		}
	}
	wait := r.publishLocked()
	r.writeMu.Unlock()
	return wait(), nil
}

// AddMemberships applies membership grants across several groups as
// one published version: grants maps each group name to the members
// (principals or nested groups) to add to it. The whole map is applied
// atomically — on the first failure every prior edit is rolled back and
// the published state is untouched — the closure is refrozen once, and
// one epoch carries every grant. This is the cross-group analogue of
// AddMembers: populating G groups one AddMembers call at a time pays G
// freezes, each cloning the full membership table; the bulk call pays
// one. Groups are processed in sorted name order, so which grant an
// error reports is deterministic. It returns the version the batch
// landed in; an empty or all-empty map is a no-op returning 0.
func (r *Registry) AddMemberships(grants map[string][]string) (uint64, error) {
	gnames := make([]string, 0, len(grants))
	total := 0
	for g, ms := range grants {
		if len(ms) == 0 {
			continue
		}
		gnames = append(gnames, g)
		total += len(ms)
	}
	if total == 0 {
		return 0, nil
	}
	sort.Strings(gnames)
	type edit struct{ group, member string }
	r.writeMu.Lock()
	inserted := make([]edit, 0, total)
	for _, gname := range gnames {
		for _, m := range grants[gname] {
			ins, err := r.addMemberLocked(gname, m)
			if err != nil {
				for _, u := range inserted {
					r.removeMemberLocked(u.group, u.member)
				}
				r.writeMu.Unlock()
				return 0, fmt.Errorf("group %q: %w", gname, err)
			}
			if ins {
				inserted = append(inserted, edit{group: gname, member: m})
			}
		}
	}
	wait := r.publishLocked()
	r.writeMu.Unlock()
	return wait(), nil
}

// RemoveMembers removes several direct members from one group as one
// published version, with the same all-or-nothing and single-freeze
// semantics as AddMembers. It returns the version the batch landed in;
// an empty member list is a no-op returning 0.
func (r *Registry) RemoveMembers(groupName string, members ...string) (uint64, error) {
	if len(members) == 0 {
		return 0, nil
	}
	r.writeMu.Lock()
	type undo struct {
		member string
		sub    bool
	}
	removed := make([]undo, 0, len(members))
	for _, m := range members {
		sub, err := r.removeMemberLocked(groupName, m)
		if err != nil {
			g := r.groups[groupName]
			for _, u := range removed {
				if u.sub {
					g.subgroups[u.member] = true
				} else {
					g.principals[u.member] = true
					r.directMembers++
				}
			}
			r.writeMu.Unlock()
			return 0, err
		}
		removed = append(removed, undo{member: m, sub: sub})
	}
	wait := r.publishLocked()
	r.writeMu.Unlock()
	return wait(), nil
}

// addMemberLocked applies one membership edit to the builder tables,
// marking dirty state, and reports whether it inserted a new direct
// member (false when already present). Caller holds writeMu.
func (r *Registry) addMemberLocked(groupName, member string) (inserted bool, err error) {
	g, ok := r.groups[groupName]
	if !ok {
		return false, fmt.Errorf("%w: group %q", ErrNotFound, groupName)
	}
	if _, isP := r.principals[member]; isP {
		inserted = !g.principals[member]
		if inserted {
			r.directMembers++
		}
		g.principals[member] = true
		r.dirtyGroups[groupName] = true
		r.dirtyPrincipals[member] = true
		return inserted, nil
	}
	if _, isG := r.groups[member]; isG {
		if member == groupName || r.reachableLocked(member, groupName) {
			return false, fmt.Errorf("%w: %q -> %q", ErrCycle, groupName, member)
		}
		inserted = !g.subgroups[member]
		g.subgroups[member] = true
		r.dirtyAll = true // subgroup edge: retained super sets are stale
		return inserted, nil
	}
	return false, fmt.Errorf("%w: member %q", ErrNotFound, member)
}

// removeMemberLocked applies one membership removal to the builder
// tables, marking dirty state, and reports whether the removed member
// was a subgroup. Caller holds writeMu.
func (r *Registry) removeMemberLocked(groupName, member string) (sub bool, err error) {
	g, ok := r.groups[groupName]
	if !ok {
		return false, fmt.Errorf("%w: group %q", ErrNotFound, groupName)
	}
	if g.principals[member] {
		delete(g.principals, member)
		r.directMembers--
		r.dirtyGroups[groupName] = true
		r.dirtyPrincipals[member] = true
		return false, nil
	}
	if g.subgroups[member] {
		delete(g.subgroups, member)
		r.dirtyAll = true // subgroup edge: retained super sets are stale
		return true, nil
	}
	return false, fmt.Errorf("%w: member %q of %q", ErrNotFound, member, groupName)
}

// reachableLocked reports whether group "to" is reachable from group
// "from" through subgroup edges. Caller holds writeMu.
func (r *Registry) reachableLocked(from, to string) bool {
	seen := map[string]bool{}
	var walk func(string) bool
	walk = func(cur string) bool {
		if cur == to {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		g, ok := r.groups[cur]
		if !ok {
			return false
		}
		for sub := range g.subgroups {
			if walk(sub) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// IsMember reports whether the named principal is a transitive member of
// the named group in the current frozen version. Unknown principals or
// groups are simply not members.
func (r *Registry) IsMember(principalName, groupName string) bool {
	return r.frozen.Load().IsMember(principalName, groupName)
}

// Members returns the direct members of a group: principal names and
// group names (prefixed "@"), sorted.
func (r *Registry) Members(groupName string) ([]string, error) {
	return r.frozen.Load().Members(groupName)
}

// IssueToken mints an authentication token for a registered principal.
// Tokens are HMAC-SHA256 over the principal name with a per-registry
// secret — a stand-in for whatever real authentication (certificates,
// signed code) a deployment would use.
func (r *Registry) IssueToken(name string) (string, error) {
	if _, err := r.Principal(name); err != nil {
		return "", err
	}
	mac := hmac.New(sha256.New, r.secret)
	mac.Write([]byte(name))
	sum := mac.Sum(nil)
	return name + "." + base64.RawURLEncoding.EncodeToString(sum), nil
}

// Authenticate verifies a token and returns the principal it names.
func (r *Registry) Authenticate(token string) (*Principal, error) {
	i := strings.LastIndexByte(token, '.')
	if i < 0 {
		return nil, ErrBadToken
	}
	name, sig := token[:i], token[i+1:]
	want, err := base64.RawURLEncoding.DecodeString(sig)
	if err != nil {
		return nil, ErrBadToken
	}
	mac := hmac.New(sha256.New, r.secret)
	mac.Write([]byte(name))
	if !hmac.Equal(mac.Sum(nil), want) {
		return nil, ErrBadToken
	}
	return r.Principal(name)
}

// TokenSecret returns a copy of the per-registry token-signing secret.
// Host-privileged: replication uses it so a replica registry can verify
// tokens the primary issued; nothing else should read it.
func (r *Registry) TokenSecret() []byte {
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	return append([]byte(nil), r.secret...)
}

// SetTokenSecret replaces the token-signing secret, so primary-issued
// tokens authenticate against this registry. Host-privileged, bootstrap
// only: call before the registry serves concurrent Authenticate traffic
// (a replica installs the primary's secret while replaying the initial
// snapshot, before it accepts clients).
func (r *Registry) SetTokenSecret(secret []byte) error {
	if len(secret) < 16 {
		return fmt.Errorf("principal: token secret too short (%d bytes)", len(secret))
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	r.secret = append([]byte(nil), secret...)
	return nil
}
