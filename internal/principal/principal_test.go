package principal

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"secext/internal/lattice"
)

func newTestRegistry(t *testing.T) (*Registry, *lattice.Lattice) {
	t.Helper()
	lat, err := lattice.NewWithUniverse(
		[]string{"others", "organization", "local"},
		[]string{"myself", "dept-1", "dept-2", "outside"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return NewRegistry(lat), lat
}

func TestAddAndLookupPrincipal(t *testing.T) {
	r, lat := newTestRegistry(t)
	alice, err := r.AddPrincipal("alice", lat.MustClass("local", "myself"))
	if err != nil {
		t.Fatalf("AddPrincipal: %v", err)
	}
	if alice.SubjectName() != "alice" {
		t.Errorf("SubjectName = %q", alice.SubjectName())
	}
	if alice.Class().String() != "local:{myself}" {
		t.Errorf("Class = %s", alice.Class())
	}
	got, err := r.Principal("alice")
	if err != nil || got != alice {
		t.Errorf("Principal lookup: %v %v", got, err)
	}
	if _, err := r.Principal("bob"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing principal: got %v, want ErrNotFound", err)
	}
}

func TestDuplicateAndBadNames(t *testing.T) {
	r, lat := newTestRegistry(t)
	c := lat.MustClass("others")
	if _, err := r.AddPrincipal("alice", c); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddPrincipal("alice", c); !errors.Is(err, ErrExists) {
		t.Errorf("dup principal: got %v", err)
	}
	if err := r.AddGroup("alice"); !errors.Is(err, ErrExists) {
		t.Errorf("group shadowing principal: got %v", err)
	}
	if err := r.AddGroup("staff"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddGroup("staff"); !errors.Is(err, ErrExists) {
		t.Errorf("dup group: got %v", err)
	}
	if _, err := r.AddPrincipal("staff", c); !errors.Is(err, ErrExists) {
		t.Errorf("principal shadowing group: got %v", err)
	}
	for _, bad := range []string{"", "*", "a b", "a@b", "a;b", "a/b"} {
		if _, err := r.AddPrincipal(bad, c); !errors.Is(err, ErrBadName) {
			t.Errorf("AddPrincipal(%q): got %v, want ErrBadName", bad, err)
		}
		if err := r.AddGroup(bad); !errors.Is(err, ErrBadName) {
			t.Errorf("AddGroup(%q): got %v, want ErrBadName", bad, err)
		}
	}
}

func TestForeignLatticeClass(t *testing.T) {
	r, _ := newTestRegistry(t)
	other, _ := lattice.NewWithUniverse([]string{"x"}, nil)
	if _, err := r.AddPrincipal("p", other.MustClass("x")); !errors.Is(err, ErrInvalidClass) {
		t.Errorf("got %v, want ErrInvalidClass", err)
	}
}

func TestTransitiveMembership(t *testing.T) {
	r, lat := newTestRegistry(t)
	c := lat.MustClass("organization", "dept-1")
	alice, _ := r.AddPrincipal("alice", c)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.AddGroup("kernel-team"))
	must(r.AddGroup("engineering"))
	must(r.AddGroup("company"))
	must(r.AddMember("kernel-team", "alice"))
	must(r.AddMember("engineering", "kernel-team"))
	must(r.AddMember("company", "engineering"))

	for _, g := range []string{"kernel-team", "engineering", "company"} {
		if !alice.MemberOf(g) {
			t.Errorf("alice must be transitive member of %s", g)
		}
	}
	if alice.MemberOf("nonexistent") {
		t.Error("membership in unknown group must be false")
	}
	groups := alice.Groups()
	if len(groups) != 3 || groups[0] != "company" {
		t.Errorf("Groups = %v", groups)
	}

	must(r.RemoveMember("engineering", "kernel-team"))
	if alice.MemberOf("company") {
		t.Error("removing the chain link must break transitive membership")
	}
	if !alice.MemberOf("kernel-team") {
		t.Error("direct membership must survive")
	}
}

func TestCycleRejection(t *testing.T) {
	r, _ := newTestRegistry(t)
	for _, g := range []string{"a", "b", "c"} {
		if err := r.AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddMember("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddMember("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddMember("c", "a"); !errors.Is(err, ErrCycle) {
		t.Errorf("3-cycle: got %v, want ErrCycle", err)
	}
	if err := r.AddMember("a", "a"); !errors.Is(err, ErrCycle) {
		t.Errorf("self-cycle: got %v, want ErrCycle", err)
	}
}

func TestMembershipErrors(t *testing.T) {
	r, lat := newTestRegistry(t)
	if err := r.AddMember("nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("AddMember to missing group: %v", err)
	}
	if err := r.AddGroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddMember("g", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("AddMember of unknown member: %v", err)
	}
	if err := r.RemoveMember("g", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("RemoveMember of non-member: %v", err)
	}
	if err := r.RemoveMember("nope", "x"); !errors.Is(err, ErrNotFound) {
		t.Errorf("RemoveMember from missing group: %v", err)
	}
	if _, err := r.Members("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Members of missing group: %v", err)
	}
	if _, err := r.AddPrincipal("p", lat.MustClass("others")); err != nil {
		t.Fatal(err)
	}
	if err := r.AddMember("g", "p"); err != nil {
		t.Fatal(err)
	}
	ms, err := r.Members("g")
	if err != nil || len(ms) != 1 || ms[0] != "p" {
		t.Errorf("Members = %v, %v", ms, err)
	}
}

func TestMembersListsGroupsWithPrefix(t *testing.T) {
	r, lat := newTestRegistry(t)
	if _, err := r.AddPrincipal("bob", lat.MustClass("others")); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"inner", "outer"} {
		if err := r.AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.AddMember("outer", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddMember("outer", "inner"); err != nil {
		t.Fatal(err)
	}
	ms, err := r.Members("outer")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] != "@inner" || ms[1] != "bob" {
		t.Errorf("Members = %v", ms)
	}
}

func TestTokens(t *testing.T) {
	r, lat := newTestRegistry(t)
	alice, _ := r.AddPrincipal("alice", lat.MustClass("local"))
	tok, err := r.IssueToken("alice")
	if err != nil {
		t.Fatalf("IssueToken: %v", err)
	}
	got, err := r.Authenticate(tok)
	if err != nil || got != alice {
		t.Fatalf("Authenticate: %v %v", got, err)
	}
	// Tampered tokens fail.
	if _, err := r.Authenticate(tok[:len(tok)-2] + "xx"); !errors.Is(err, ErrBadToken) {
		t.Errorf("tampered sig: got %v", err)
	}
	if _, err := r.Authenticate("bob." + strings.Split(tok, ".")[1]); err == nil {
		t.Error("renamed token must fail")
	}
	if _, err := r.Authenticate("garbage"); !errors.Is(err, ErrBadToken) {
		t.Errorf("garbage token: got %v", err)
	}
	if _, err := r.Authenticate("alice.!!!"); !errors.Is(err, ErrBadToken) {
		t.Errorf("bad base64: got %v", err)
	}
	if _, err := r.IssueToken("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("token for unknown principal: got %v", err)
	}
	// Tokens from a different registry (different secret) fail.
	r2, lat2 := NewRegistry(lat), lat
	_ = lat2
	if _, err := r2.AddPrincipal("alice", lat.MustClass("local")); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Authenticate(tok); !errors.Is(err, ErrBadToken) {
		t.Errorf("cross-registry token: got %v", err)
	}
}

func TestRegistryAccessors(t *testing.T) {
	r, lat := newTestRegistry(t)
	if _, err := r.AddPrincipal("zed", lat.MustClass("others")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddPrincipal("amy", lat.MustClass("others")); err != nil {
		t.Fatal(err)
	}
	if err := r.AddGroup("g1"); err != nil {
		t.Fatal(err)
	}
	ps := r.Principals()
	if len(ps) != 2 || ps[0] != "amy" || ps[1] != "zed" {
		t.Errorf("Principals = %v", ps)
	}
	gs := r.Groups()
	if len(gs) != 1 || gs[0] != "g1" {
		t.Errorf("Groups = %v", gs)
	}
	if r.Lattice() != lat {
		t.Error("Lattice accessor")
	}
	p, _ := r.Principal("amy")
	if s := p.String(); !strings.Contains(s, "amy@others") {
		t.Errorf("String = %q", s)
	}
}

func TestConcurrentMembership(t *testing.T) {
	r, lat := newTestRegistry(t)
	alice, _ := r.AddPrincipal("alice", lat.MustClass("others"))
	if err := r.AddGroup("g0"); err != nil {
		t.Fatal(err)
	}
	if err := r.AddMember("g0", "alice"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = alice.MemberOf("g0")
				_ = alice.Groups()
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "grp" + string(rune('a'+i))
			if err := r.AddGroup(name); err != nil {
				t.Errorf("AddGroup(%s): %v", name, err)
				return
			}
			if err := r.AddMember(name, "alice"); err != nil {
				t.Errorf("AddMember: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := len(alice.Groups()); got != 5 {
		t.Errorf("alice in %d groups, want 5", got)
	}
}
