package provenance

import (
	"secext/internal/acl"
	"secext/internal/lattice"
	"secext/internal/monitor"
	"secext/internal/monitor/macguard"
	"secext/internal/names"
	"secext/internal/principal"
)

// ExplainCheck re-evaluates the decision (sub, path, modes) against
// the pinned epoch and returns the full working. The Allowed/Reason
// fields are authoritative — they come from the exact uncached
// production check (Epoch.CheckIn) — while the traversal, ACL, guard,
// and MAC sections are instrumented re-runs of each stage.
//
// ExplainCheck never consults or fills the decision cache and is
// never audited as an access: callers gate it behind an administrative
// surface (the remote EXPLAIN command, /debug/explain), not behind
// mediation.
func ExplainCheck(ep *names.Epoch, sub Subject, path string, modes acl.Mode) *Explanation {
	class := sub.Class()
	ex := &Explanation{
		EpochVersion: ep.Version(),
		Subject:      sub.SubjectName(),
		SubjectClass: class.String(),
		Path:         path,
		Modes:        modes.String(),
		ShortCircuit: -1,
	}
	// Authoritative verdict first: the production check, pinned to ep.
	if _, err := ep.CheckIn(sub, class, path, modes); err != nil {
		ex.Reason = err.Error()
	} else {
		ex.Allowed = true
	}
	// Route: would the compiled read side have decided this, or does
	// the production path take the walk?
	ex.Route = "walk"
	if _, decided := ep.CompiledAllows(sub, class, path, modes); decided {
		ex.Route = "compiled"
	}
	members := ep.Membership()
	stack := ep.Stack()
	// Traversal visibility: every interior node on the way to the
	// target, judged exactly as resolution judges it (list + MAC read,
	// OpTraverse).
	for _, prefix := range ancestors(path) {
		n, err := ep.Lookup(prefix)
		if err != nil {
			break // unbound below here; the resolve section reports it
		}
		step := TraversalStep{Path: prefix, Class: n.Class().String()}
		if !ep.TraversalChecks() {
			step.Visible = true
			step.Reason = "traversal checks disabled"
		} else {
			v := stack.Check(monitor.Request{
				Subject: sub, Class: class, Object: object(n, prefix),
				Modes: acl.List, Members: members, Op: monitor.OpTraverse,
			})
			step.Visible = v.Allow
			step.Reason = v.Reason
		}
		ex.Traversal = append(ex.Traversal, step)
	}
	n, err := ep.Lookup(path)
	if err != nil {
		ex.ResolveError = err.Error()
		return ex
	}
	ex.Resolved = true
	// Discretionary working: which entries matched and why.
	a := n.ACL()
	aex := a.ExplainIn(sub, modes, members)
	rep := &ACLReport{
		ACL:     a.String(),
		Allowed: modeStr(aex.Allowed),
		Denied:  modeStr(aex.Denied),
		Granted: modeStr(aex.Granted),
		Want:    aex.Want.String(),
		Verdict: aex.Verdict,
	}
	for _, e := range aex.Matched {
		me := MatchedEntry{Entry: e.String(), Deny: e.Deny, Modes: e.Modes.String()}
		if e.Kind == acl.Group {
			me.Chain = membershipChain(ep.Registry(), ex.Subject, e.Who)
		}
		rep.Matched = append(rep.Matched, me)
	}
	ex.ACL = rep
	// Every guard's verdict, with the production short-circuit point
	// marked instead of silently stopping there.
	vs, sc := stack.ExplainOp(monitor.Request{
		Subject: sub, Class: class, Object: object(n, path),
		Modes: modes, Members: members, Op: monitor.OpAccess,
	})
	ex.ShortCircuit = sc
	for i, v := range vs {
		ex.Guards = append(ex.Guards, GuardReport{
			Guard: v.Guard, Allow: v.Allow, Reason: v.Reason, Decisive: i == sc,
		})
	}
	ex.MAC = macReport(class, n.Class(), modes)
	return ex
}

// ancestors returns the interior prefixes of path in walk order: "/"
// first, then each deeper container, excluding path itself. The root
// has no ancestors.
func ancestors(path string) []string {
	if path == "/" {
		return nil
	}
	out := []string{"/"}
	for i := 1; i < len(path); i++ {
		if path[i] == '/' {
			out = append(out, path[:i])
		}
	}
	return out
}

// object mirrors the Object the production path hands guards for node
// n at path (names.describe); the ACL clone is fine for pure guards.
func object(n *names.Node, path string) monitor.Object {
	return monitor.Object{Path: path, ACL: n.ACL(), Class: n.Class(), Multilevel: n.Multilevel()}
}

// membershipChain finds one shortest chain connecting the subject to
// the group a matched ACL entry names: group first, then each
// intermediate subgroup, then the subject. BFS over the registry's
// direct-member edges; nil when the registry is absent or no chain
// exists (the entry then matched via the subject's own MemberOf).
func membershipChain(reg *principal.Frozen, subject, group string) []string {
	if reg == nil {
		return nil
	}
	type item struct {
		group string
		chain []string
	}
	seen := map[string]bool{group: true}
	queue := []item{{group, []string{"@" + group}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		members, err := reg.Members(cur.group)
		if err != nil {
			continue
		}
		for _, m := range members {
			if len(m) > 1 && m[0] == '@' {
				sg := m[1:]
				if !seen[sg] {
					seen[sg] = true
					chain := append(append([]string{}, cur.chain...), m)
					queue = append(queue, item{sg, chain})
				}
			} else if m == subject {
				return append(append([]string{}, cur.chain...), subject)
			}
		}
	}
	return nil
}

// macReport replays the mandatory flow rules with both dominance
// directions and both classes named. The rule strings match
// macguard's denial reasons byte for byte.
func macReport(sc, oc lattice.Class, modes acl.Mode) *MACReport {
	const readGroup = acl.Read | acl.List | acl.Execute | acl.Extend
	const writeGroup = acl.Write | acl.Delete | acl.Administrate
	m := &MACReport{
		SubjectClass:           sc.String(),
		ObjectClass:            oc.String(),
		SubjectDominatesObject: sc.Dominates(oc),
		ObjectDominatesSubject: oc.Dominates(sc),
		ReadModes:              modeStr(modes & readGroup),
		WriteModes:             modeStr(modes & writeGroup),
		AppendModes:            modeStr(modes & acl.WriteAppend),
		Allow:                  macguard.FlowAllows(sc, oc, modes),
	}
	switch {
	case modes&readGroup != 0 && !sc.CanRead(oc):
		m.Reason = "mac: subject does not dominate object (no read up)"
	case modes&writeGroup != 0 && !sc.CanWrite(oc):
		m.Reason = "mac: object does not dominate subject (no write down)"
	case modes&acl.WriteAppend != 0 && !sc.CanAppend(oc):
		m.Reason = "mac: append would write down"
	}
	return m
}

// modeStr renders a mode set, empty string for the empty set (so JSON
// omitempty drops it).
func modeStr(m acl.Mode) string {
	if m == acl.None {
		return ""
	}
	return m.String()
}
