// Package provenance answers "why did the monitor decide that?" — it
// re-evaluates an access decision against a pinned epoch in
// instrumented mode and reports every contribution to the verdict:
// the epoch version, whether the production path would have answered
// from the compiled index or the tree walk, per-component traversal
// visibility, the specific ACL entries that matched (with the
// membership chain that made a group entry apply), every guard's
// verdict with the short-circuit point, and the MAC dominance
// comparison with both lattice classes named.
//
// Explain is advisory tooling: it never touches the decision cache,
// its re-evaluation is never audited as an access, and its verdict is
// never enforced — the authoritative answer is the production check
// it replays (Epoch.CheckIn), byte for byte.
package provenance

import (
	"fmt"
	"strings"

	"secext/internal/acl"
	"secext/internal/lattice"
)

// Subject is what explain needs from a requesting principal: the ACL
// identity plus the current security class. subject.Context satisfies
// it.
type Subject interface {
	acl.Subject
	Class() lattice.Class
}

// TraversalStep is the visibility verdict for one interior node on
// the way to the target: resolution walks through it only if the
// subject holds list on it and may MAC-read it.
type TraversalStep struct {
	Path    string `json:"path"`
	Class   string `json:"class"`
	Visible bool   `json:"visible"`
	Reason  string `json:"reason,omitempty"`
}

// MatchedEntry is one ACL entry that applied to the subject, plus —
// for group entries — the membership chain that connected the subject
// to the group (group, intermediate subgroups, subject).
type MatchedEntry struct {
	Entry string   `json:"entry"`
	Deny  bool     `json:"deny"`
	Modes string   `json:"modes"`
	Chain []string `json:"membership_chain,omitempty"`
}

// ACLReport is the discretionary half of the decision: the target's
// ACL, which entries matched, and the allow/deny/granted mode
// arithmetic.
type ACLReport struct {
	ACL     string         `json:"acl"`
	Matched []MatchedEntry `json:"matched"`
	Allowed string         `json:"allowed,omitempty"`
	Denied  string         `json:"denied,omitempty"`
	Granted string         `json:"granted,omitempty"`
	Want    string         `json:"want"`
	Verdict bool           `json:"verdict"`
}

// MACReport is the mandatory half: both classes named, both dominance
// directions, and which of the requested modes fall into each flow
// group.
type MACReport struct {
	SubjectClass           string `json:"subject_class"`
	ObjectClass            string `json:"object_class"`
	SubjectDominatesObject bool   `json:"subject_dominates_object"`
	ObjectDominatesSubject bool   `json:"object_dominates_subject"`
	ReadModes              string `json:"read_modes,omitempty"`   // need subject ⊒ object
	WriteModes             string `json:"write_modes,omitempty"`  // need object ⊒ subject
	AppendModes            string `json:"append_modes,omitempty"` // need object ⊒ subject
	Allow                  bool   `json:"allow"`
	Reason                 string `json:"reason,omitempty"`
}

// GuardReport is one guard's verdict from the instrumented run: every
// guard is consulted (no silent short-circuit), and the guard whose
// denial would have ended a production check is marked Decisive.
type GuardReport struct {
	Guard    string `json:"guard"`
	Allow    bool   `json:"allow"`
	Reason   string `json:"reason,omitempty"`
	Decisive bool   `json:"decisive,omitempty"`
}

// Explanation is the structured verdict tree ExplainCheck returns.
// Allowed/Reason are the authoritative production verdict; everything
// else is the instrumented working that produced it.
type Explanation struct {
	EpochVersion uint64 `json:"epoch_version"`
	Subject      string `json:"subject"`
	SubjectClass string `json:"subject_class"`
	Path         string `json:"path"`
	Modes        string `json:"modes"`
	Allowed      bool   `json:"allowed"`
	Reason       string `json:"reason,omitempty"`
	// Route says how the production read path would have answered:
	// "compiled" when the freeze-time index + bitsets prove the allow,
	// "walk" when the decision takes (or would fall back to) the tree
	// walk — all denials take the walk, which derives the exact error.
	Route        string          `json:"route"`
	Resolved     bool            `json:"resolved"` // path structurally bound
	ResolveError string          `json:"resolve_error,omitempty"`
	Traversal    []TraversalStep `json:"traversal,omitempty"`
	ACL          *ACLReport      `json:"acl,omitempty"`
	MAC          *MACReport      `json:"mac,omitempty"`
	Guards       []GuardReport   `json:"guards,omitempty"`
	ShortCircuit int             `json:"short_circuit"` // index into Guards; -1 = none
}

// String renders the explanation as an indented human-readable
// verdict tree — what secctl explain prints.
func (ex *Explanation) String() string {
	var b strings.Builder
	verdict := "DENY"
	if ex.Allowed {
		verdict = "ALLOW"
	}
	fmt.Fprintf(&b, "%s %s %s on %s (epoch v%d, route %s)\n",
		verdict, ex.Subject, ex.Modes, ex.Path, ex.EpochVersion, ex.Route)
	fmt.Fprintf(&b, "  subject class: %s\n", ex.SubjectClass)
	if ex.Reason != "" {
		fmt.Fprintf(&b, "  reason: %s\n", ex.Reason)
	}
	if len(ex.Traversal) > 0 {
		b.WriteString("  traversal:\n")
		for _, st := range ex.Traversal {
			vis := "visible"
			if !st.Visible {
				vis = "HIDDEN"
			}
			fmt.Fprintf(&b, "    %s (class %s): %s", st.Path, st.Class, vis)
			if st.Reason != "" {
				fmt.Fprintf(&b, " — %s", st.Reason)
			}
			b.WriteByte('\n')
		}
	}
	if !ex.Resolved {
		if ex.ResolveError != "" {
			fmt.Fprintf(&b, "  resolve: %s\n", ex.ResolveError)
		}
		return b.String()
	}
	if a := ex.ACL; a != nil {
		fmt.Fprintf(&b, "  acl [%s]:\n", a.ACL)
		if len(a.Matched) == 0 {
			b.WriteString("    no entries matched the subject (fail-closed)\n")
		}
		for _, m := range a.Matched {
			fmt.Fprintf(&b, "    matched: %s", m.Entry)
			if len(m.Chain) > 0 {
				fmt.Fprintf(&b, " (via %s)", strings.Join(m.Chain, " -> "))
			}
			b.WriteByte('\n')
		}
		aver := "DENY"
		if a.Verdict {
			aver = "ALLOW"
		}
		fmt.Fprintf(&b, "    granted %s, want %s => %s\n",
			orNone(a.Granted), a.Want, aver)
	}
	if len(ex.Guards) > 0 {
		b.WriteString("  guards:\n")
		for _, g := range ex.Guards {
			gv := "allow"
			if !g.Allow {
				gv = "DENY"
			}
			fmt.Fprintf(&b, "    %s: %s", g.Guard, gv)
			if g.Reason != "" {
				fmt.Fprintf(&b, " — %s", g.Reason)
			}
			if g.Decisive {
				b.WriteString("   <- decided here")
			}
			b.WriteByte('\n')
		}
	}
	if m := ex.MAC; m != nil {
		fmt.Fprintf(&b, "  mac: subject %s vs object %s\n", m.SubjectClass, m.ObjectClass)
		fmt.Fprintf(&b, "    subject dominates object: %v, object dominates subject: %v\n",
			m.SubjectDominatesObject, m.ObjectDominatesSubject)
		if m.ReadModes != "" {
			fmt.Fprintf(&b, "    read-up rule applies to %s (needs subject ⊒ object)\n", m.ReadModes)
		}
		if m.WriteModes != "" {
			fmt.Fprintf(&b, "    write-down rule applies to %s (needs object ⊒ subject)\n", m.WriteModes)
		}
		if m.AppendModes != "" {
			fmt.Fprintf(&b, "    append rule applies to %s (needs object ⊒ subject)\n", m.AppendModes)
		}
		if m.Reason != "" {
			fmt.Fprintf(&b, "    verdict: DENY — %s\n", m.Reason)
		} else {
			b.WriteString("    verdict: allow\n")
		}
	}
	return b.String()
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
