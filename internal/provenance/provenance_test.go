package provenance

import (
	"encoding/json"
	"strings"
	"testing"

	"secext/internal/acl"
	"secext/internal/lattice"
	"secext/internal/names"
	"secext/internal/principal"
)

// testSubject is a principal with a class, the shape ExplainCheck
// needs (subject.Context satisfies the same interface in production).
type testSubject struct {
	name  string
	class lattice.Class
}

func (s testSubject) SubjectName() string  { return s.name }
func (s testSubject) MemberOf(string) bool { return false }
func (s testSubject) Class() lattice.Class { return s.class }

// world is a compiled name-space fixture with a nested group chain:
// ops ∋ @oncall ∋ alice. The tree has an open /svc spine, a service
// readable by ops members, and a high-classified /vault subtree.
type world struct {
	srv           *names.Server
	lat           *lattice.Lattice
	bot, org, top lattice.Class
}

func newWorld(t *testing.T) *world {
	t.Helper()
	lat, err := lattice.NewWithUniverse(
		[]string{"others", "organization", "local"},
		[]string{"dept-1", "dept-2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := lat.Top()
	bot, _ := lat.Bottom()
	org := lat.MustClass("organization", "dept-1")
	open := acl.New(acl.Allow("root", acl.AllModes), acl.AllowEveryone(acl.List))
	srv := names.NewServer(lat, open.Clone(), bot)
	w := &world{srv: srv, lat: lat, bot: bot, org: org, top: top}

	svcACL := acl.New(
		acl.Allow("root", acl.AllModes),
		acl.AllowGroup("ops", acl.Read|acl.Execute),
		acl.AllowEveryone(acl.List),
	)
	wide := acl.New(acl.AllowEveryone(acl.Read | acl.Write | acl.WriteAppend | acl.List))
	for _, b := range []struct {
		parent string
		spec   names.BindSpec
	}{
		{"/", names.BindSpec{Name: "svc", Kind: names.KindDomain, ACL: open, Class: bot}},
		{"/svc", names.BindSpec{Name: "fs", Kind: names.KindInterface, ACL: open, Class: bot}},
		{"/svc/fs", names.BindSpec{Name: "read", Kind: names.KindMethod, ACL: svcACL, Class: bot, Payload: "impl"}},
		// /vault is classified high but discretionarily wide open: MAC
		// alone decides, in both directions.
		{"/", names.BindSpec{Name: "vault", Kind: names.KindDomain, ACL: wide, Class: top}},
		{"/vault", names.BindSpec{Name: "plans", Kind: names.KindFile, ACL: wide, Class: top}},
		// /low is a low sink under the open spine, for write-down tests.
		{"/", names.BindSpec{Name: "low", Kind: names.KindFile, ACL: wide, Class: bot}},
		// /svc/private names only root: nothing matches anyone else.
		{"/svc", names.BindSpec{Name: "private", Kind: names.KindFile,
			ACL: acl.New(acl.Allow("root", acl.AllModes)), Class: bot}},
	} {
		if _, err := srv.BindUnchecked(b.parent, b.spec); err != nil {
			t.Fatalf("bind %s/%s: %v", b.parent, b.spec.Name, err)
		}
	}

	reg := principal.NewRegistry(lat)
	for _, p := range []string{"root", "alice", "bob"} {
		if _, err := reg.AddPrincipal(p, bot); err != nil {
			t.Fatal(err)
		}
	}
	for _, g := range []string{"ops", "oncall"} {
		if err := reg.AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.AddMember("ops", "oncall"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMember("oncall", "alice"); err != nil {
		t.Fatal(err)
	}
	srv.AttachRegistry(reg)
	return w
}

func (w *world) explain(name string, class lattice.Class, path string, modes acl.Mode) *Explanation {
	return ExplainCheck(w.srv.Current(), testSubject{name, class}, path, modes)
}

// TestExplainAllowedNamesEntryAndChain: an allowed check names the
// exact group entry that granted it and the membership chain that
// connected the subject to the group — and the production fast path
// (compiled route) agrees with the instrumented working.
func TestExplainAllowedNamesEntryAndChain(t *testing.T) {
	w := newWorld(t)
	ex := w.explain("alice", w.bot, "/svc/fs/read", acl.Read)

	if !ex.Allowed || ex.Reason != "" {
		t.Fatalf("alice read denied: %q", ex.Reason)
	}
	if ex.EpochVersion != w.srv.Version() {
		t.Errorf("epoch %d, server at %d", ex.EpochVersion, w.srv.Version())
	}
	if ex.Route != "compiled" {
		t.Errorf("route = %q, want compiled (registry attached, default stack)", ex.Route)
	}
	if !ex.Resolved || len(ex.Traversal) != 3 {
		t.Fatalf("resolved=%v, %d traversal steps", ex.Resolved, len(ex.Traversal))
	}
	for _, st := range ex.Traversal {
		if !st.Visible {
			t.Errorf("ancestor %s hidden: %s", st.Path, st.Reason)
		}
	}
	var group *MatchedEntry
	for i := range ex.ACL.Matched {
		if strings.Contains(ex.ACL.Matched[i].Entry, "@ops") {
			group = &ex.ACL.Matched[i]
		}
	}
	if group == nil {
		t.Fatalf("group entry not matched: %+v", ex.ACL.Matched)
	}
	wantChain := []string{"@ops", "@oncall", "alice"}
	if len(group.Chain) != len(wantChain) {
		t.Fatalf("chain = %v, want %v", group.Chain, wantChain)
	}
	for i := range wantChain {
		if group.Chain[i] != wantChain[i] {
			t.Fatalf("chain = %v, want %v", group.Chain, wantChain)
		}
	}
	if !ex.ACL.Verdict || ex.ACL.Granted == "" {
		t.Errorf("acl report = %+v", ex.ACL)
	}
	if ex.ShortCircuit != -1 {
		t.Errorf("short-circuit at %d on an allow", ex.ShortCircuit)
	}
	for _, g := range ex.Guards {
		if !g.Allow || g.Decisive {
			t.Errorf("guard %s on an allow: %+v", g.Guard, g)
		}
	}
	if !ex.MAC.Allow || ex.MAC.Reason != "" {
		t.Errorf("mac report = %+v", ex.MAC)
	}

	out := ex.String()
	for _, want := range []string{
		"ALLOW alice read on /svc/fs/read",
		"route compiled",
		"matched: allow @ops read,execute (via @ops -> @oncall -> alice)",
		"want read => ALLOW",
		"verdict: allow",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

// TestExplainDeniedACL: a discretionary denial marks the DAC guard
// decisive and reports the fail-closed match set.
func TestExplainDeniedACL(t *testing.T) {
	w := newWorld(t)
	ex := w.explain("bob", w.bot, "/svc/fs/read", acl.Read)

	if ex.Allowed {
		t.Fatal("bob read allowed")
	}
	if ex.Route != "walk" {
		t.Errorf("route = %q; denials always take the walk", ex.Route)
	}
	if ex.ACL.Verdict {
		t.Errorf("acl verdict allow for bob: %+v", ex.ACL)
	}
	// Only the everyone-list entry matches bob; read is not granted.
	if len(ex.ACL.Matched) != 1 || !strings.Contains(ex.ACL.Matched[0].Entry, "allow *") {
		t.Errorf("matched = %+v", ex.ACL.Matched)
	}
	if ex.ShortCircuit < 0 || ex.Guards[ex.ShortCircuit].Guard != "dac" {
		t.Errorf("short-circuit = %d, guards = %+v", ex.ShortCircuit, ex.Guards)
	}
	if !ex.Guards[ex.ShortCircuit].Decisive {
		t.Error("short-circuit guard not marked decisive")
	}
	if out := ex.String(); !strings.Contains(out, "<- decided here") {
		t.Errorf("rendering misses the decisive marker:\n%s", out)
	}
}

// TestExplainDeniedMAC covers all three flow rules with the dominance
// comparison spelled out: read up, write down, append down.
func TestExplainDeniedMAC(t *testing.T) {
	w := newWorld(t)

	// bob (bot) reading /vault/plans (top): no read up.
	ex := w.explain("bob", w.bot, "/vault/plans", acl.Read)
	if ex.Allowed {
		t.Fatal("read up allowed")
	}
	m := ex.MAC
	if m.SubjectDominatesObject || !m.ObjectDominatesSubject {
		t.Errorf("dominance = subject %v / object %v", m.SubjectDominatesObject, m.ObjectDominatesSubject)
	}
	if m.Reason != "mac: subject does not dominate object (no read up)" {
		t.Errorf("reason = %q", m.Reason)
	}
	if m.ReadModes != "read" || m.WriteModes != "" {
		t.Errorf("flow groups = read %q, write %q", m.ReadModes, m.WriteModes)
	}
	if ex.ShortCircuit < 0 || ex.Guards[ex.ShortCircuit].Guard != "mac" {
		t.Errorf("mac not decisive: sc=%d guards=%+v", ex.ShortCircuit, ex.Guards)
	}
	out := ex.String()
	for _, want := range []string{
		"subject dominates object: false, object dominates subject: true",
		"read-up rule applies to read",
		"verdict: DENY — mac: subject does not dominate object (no read up)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}

	// root (top) writing /low (bot): no write down. The traversal into
	// /vault is not involved — /low hangs off the open root.
	ex = w.explain("root", w.top, "/low", acl.Write)
	if ex.Allowed {
		t.Fatal("write down allowed")
	}
	if ex.MAC.Reason != "mac: object does not dominate subject (no write down)" {
		t.Errorf("write-down reason = %q", ex.MAC.Reason)
	}
	if ex.MAC.WriteModes != "write" {
		t.Errorf("write group = %q", ex.MAC.WriteModes)
	}

	// root (top) appending to /low (bot): append would write down.
	ex = w.explain("root", w.top, "/low", acl.WriteAppend)
	if ex.Allowed {
		t.Fatal("append down allowed")
	}
	if ex.MAC.Reason != "mac: append would write down" {
		t.Errorf("append reason = %q", ex.MAC.Reason)
	}
	if ex.MAC.AppendModes != "write-append" {
		t.Errorf("append group = %q", ex.MAC.AppendModes)
	}
	if out := ex.String(); !strings.Contains(out, "append rule applies to write-append") {
		t.Errorf("rendering misses the append rule:\n%s", out)
	}
}

// TestExplainHiddenTraversal: a subject that cannot MAC-read an
// interior node sees the step reported HIDDEN with the monitor's
// reason, and the overall verdict is the walk's denial.
func TestExplainHiddenTraversal(t *testing.T) {
	w := newWorld(t)
	ex := w.explain("bob", w.bot, "/vault/plans", acl.List)
	if ex.Allowed {
		t.Fatal("bob sees into /vault")
	}
	var vault *TraversalStep
	for i := range ex.Traversal {
		if ex.Traversal[i].Path == "/vault" {
			vault = &ex.Traversal[i]
		}
	}
	if vault == nil {
		t.Fatalf("no /vault step in %+v", ex.Traversal)
	}
	if vault.Visible || vault.Reason == "" {
		t.Errorf("/vault step = %+v, want HIDDEN with a reason", *vault)
	}
	if out := ex.String(); !strings.Contains(out, "HIDDEN") {
		t.Errorf("rendering misses HIDDEN:\n%s", out)
	}
}

// TestExplainResolveError: a structurally unbound path reports the
// resolve failure and stops — no ACL or guard sections.
func TestExplainResolveError(t *testing.T) {
	w := newWorld(t)
	ex := w.explain("root", w.bot, "/svc/fs/nonesuch", acl.Read)
	if ex.Allowed || ex.Resolved {
		t.Fatalf("allowed=%v resolved=%v for a missing path", ex.Allowed, ex.Resolved)
	}
	if ex.ResolveError == "" || ex.ACL != nil || ex.Guards != nil {
		t.Errorf("ex = %+v, want resolve error only", ex)
	}
	if out := ex.String(); !strings.Contains(out, "resolve:") {
		t.Errorf("rendering misses the resolve section:\n%s", out)
	}
}

// TestExplainRoot: "/" has no ancestors and explain handles it.
func TestExplainRoot(t *testing.T) {
	w := newWorld(t)
	ex := w.explain("root", w.bot, "/", acl.List)
	if len(ex.Traversal) != 0 {
		t.Errorf("root has %d traversal steps", len(ex.Traversal))
	}
	if !ex.Resolved {
		t.Error("root did not resolve")
	}
}

// TestExplanationJSON: the structured tree round-trips through JSON
// with the authoritative fields intact (the /debug/explain wire form).
func TestExplanationJSON(t *testing.T) {
	w := newWorld(t)
	ex := w.explain("alice", w.bot, "/svc/fs/read", acl.Read)
	body, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	var back Explanation
	if err := json.Unmarshal(body, &back); err != nil {
		t.Fatal(err)
	}
	if back.Allowed != ex.Allowed || back.EpochVersion != ex.EpochVersion ||
		back.Route != ex.Route || len(back.Guards) != len(ex.Guards) {
		t.Errorf("round-trip lost fields: %+v vs %+v", back, ex)
	}
	if !strings.Contains(string(body), `"membership_chain"`) {
		t.Errorf("chain not serialized: %s", body)
	}
}

func TestAncestors(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"/", nil},
		{"/a", []string{"/"}},
		{"/a/b", []string{"/", "/a"}},
		{"/a/b/c", []string{"/", "/a", "/a/b"}},
	}
	for _, tc := range cases {
		got := ancestors(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("ancestors(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ancestors(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

// TestMembershipChain exercises the BFS directly: direct member,
// nested chain, no chain, and a nil registry.
func TestMembershipChain(t *testing.T) {
	w := newWorld(t)
	reg := w.srv.Current().Registry()

	got := membershipChain(reg, "alice", "oncall")
	if len(got) != 2 || got[0] != "@oncall" || got[1] != "alice" {
		t.Errorf("direct chain = %v", got)
	}
	got = membershipChain(reg, "alice", "ops")
	if len(got) != 3 || got[1] != "@oncall" {
		t.Errorf("nested chain = %v", got)
	}
	if got := membershipChain(reg, "bob", "ops"); got != nil {
		t.Errorf("chain for a non-member = %v", got)
	}
	if got := membershipChain(reg, "alice", "nonesuch"); got != nil {
		t.Errorf("chain through an unknown group = %v", got)
	}
	if got := membershipChain(nil, "alice", "ops"); got != nil {
		t.Errorf("chain with nil registry = %v", got)
	}
}

// TestStringFailClosed: the rendering of a decision where nothing
// matched says so explicitly, with the granted set empty.
func TestStringFailClosed(t *testing.T) {
	w := newWorld(t)
	// mallory is unregistered and /svc/private names only root: no
	// entry matches her at all.
	ex := w.explain("mallory", w.bot, "/svc/private", acl.Write)
	if ex.Allowed {
		t.Fatal("mallory write allowed")
	}
	if len(ex.ACL.Matched) != 0 {
		t.Errorf("matched = %+v, want none", ex.ACL.Matched)
	}
	out := ex.String()
	for _, want := range []string{
		"no entries matched the subject (fail-closed)",
		"granted none, want write => DENY",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
