// Package remote exposes a secext world over a line-oriented TCP
// protocol: clients authenticate with a principal token and then issue
// mediated commands. It is the distributed face of the model — remote
// code and remote users (the paper's applets "originating from outside
// the organization" arrive over exactly such connections) get a subject
// bound to their authenticated principal, and every command funnels
// through the same reference monitor as local callers.
//
// Protocol (one request per line, responses are "OK[ detail]" or
// "ERR <reason>"):
//
//	AUTH <token>             bind the connection to a principal
//	LS <path>                list a name-space node
//	CREATE <path>            create a file via /svc/fs/create
//	READ <path>              read a file (response: OK <quoted bytes>)
//	WRITE <path> <text...>   destructive write
//	APPEND <path> <text...>  append (the report-up channel)
//	RM <path>                remove
//	CALL <service>           invoke a service with a nil argument
//	OPEN <endpoint>          open a message endpoint
//	SEND <endpoint> <text>   send a message
//	RECV <endpoint>          receive (response: OK <from> <class> <quoted>)
//	JOURNAL <text...>        append to the system journal
//	STATS                    one-line telemetry summary
//	TRACE [n]                recent decision traces: "OK <k>" then k lines
//	EXPLAIN <path> <modes>   provenance of a decision for the connected
//	                         principal: "OK <k>" then the k-line verdict tree
//	EPOCHS [n]               epoch-transition journal, newest first:
//	                         "OK <k>" then k lines
//	WHOAMI                   current principal and class
//	QUIT                     close the connection
package remote

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"secext/internal/core"
	"secext/internal/fsys"
	"secext/internal/services/netsvc"
	"secext/internal/subject"
)

// statsLine renders the one-line STATS summary of a telemetry snapshot.
func statsLine(sys *core.System) string {
	s := sys.Telemetry().Snapshot()
	allowed, denied := s.Mediated()
	return fmt.Sprintf(
		"mode=%s mediations=%d allowed=%d denied=%d cache_hits=%d cache_misses=%d admissions=%d traces=%d",
		s.Mode, allowed+denied, allowed, denied,
		s.Cache.Hits, s.Cache.Misses,
		s.Admissions.Allowed+s.Admissions.Denied, s.TracesSampled)
}

// Server serves the protocol over a listener.
type Server struct {
	sys *core.System

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// NewServer wraps a system. The system is expected to have the standard
// world services mounted (/svc/fs, /svc/net, /svc/log).
func NewServer(sys *core.System) *Server {
	return &Server{sys: sys, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections until the listener is closed. Each
// connection is handled on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close terminates every active connection; the caller closes the
// listener itself.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
}

func (s *Server) drop(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// session is one authenticated connection.
type session struct {
	srv *Server
	ctx *subject.Context
	out *bufio.Writer
}

func (s *Server) handle(conn net.Conn) {
	defer s.drop(conn)
	sess := &session{srv: s, out: bufio.NewWriter(conn)}
	sess.reply("OK secext ready")
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			sess.reply("OK bye")
			return
		}
		sess.dispatch(line)
	}
}

func (s *session) reply(format string, args ...any) {
	fmt.Fprintf(s.out, format+"\n", args...)
	s.out.Flush()
}

func (s *session) fail(err error) {
	if core.IsDenied(err) {
		s.reply("ERR denied: %v", err)
		return
	}
	s.reply("ERR %v", err)
}

// need reports whether the session is authenticated, complaining if
// not.
func (s *session) need() bool {
	if s.ctx == nil {
		s.reply("ERR authenticate first (AUTH <token>)")
		return false
	}
	return true
}

func (s *session) dispatch(line string) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	switch cmd {
	case "AUTH":
		if len(args) != 1 {
			s.reply("ERR usage: AUTH <token>")
			return
		}
		ctx, err := s.srv.sys.NewContextFromToken(args[0])
		if err != nil {
			s.reply("ERR authentication failed")
			return
		}
		s.ctx = ctx
		s.reply("OK %s %s", ctx.SubjectName(), ctx.Class())
	case "WHOAMI":
		if s.need() {
			s.reply("OK %s %s", s.ctx.SubjectName(), s.ctx.Class())
		}
	case "LS":
		if len(args) != 1 {
			s.reply("ERR usage: LS <path>")
			return
		}
		if !s.need() {
			return
		}
		entries, err := s.srv.sys.List(s.ctx, args[0])
		if err != nil {
			s.fail(err)
			return
		}
		s.reply("OK %s", strings.Join(entries, " "))
	case "CREATE", "READ", "RM":
		if len(args) != 1 {
			s.reply("ERR usage: %s <path>", cmd)
			return
		}
		if !s.need() {
			return
		}
		svc := map[string]string{"CREATE": "create", "READ": "read", "RM": "remove"}[cmd]
		out, err := s.srv.sys.Call(s.ctx, "/svc/fs/"+svc, fsys.Request{Path: args[0]})
		if err != nil {
			s.fail(err)
			return
		}
		if b, ok := out.([]byte); ok {
			s.reply("OK %q", b)
			return
		}
		s.reply("OK")
	case "WRITE", "APPEND":
		if len(args) < 2 {
			s.reply("ERR usage: %s <path> <text>", cmd)
			return
		}
		if !s.need() {
			return
		}
		req := fsys.Request{Path: args[0], Data: []byte(strings.Join(args[1:], " "))}
		if _, err := s.srv.sys.Call(s.ctx, "/svc/fs/"+strings.ToLower(cmd), req); err != nil {
			s.fail(err)
			return
		}
		s.reply("OK")
	case "CALL":
		if len(args) != 1 {
			s.reply("ERR usage: CALL <service>")
			return
		}
		if !s.need() {
			return
		}
		out, err := s.srv.sys.Call(s.ctx, args[0], nil)
		if err != nil {
			s.fail(err)
			return
		}
		s.reply("OK %v", out)
	case "OPEN":
		if len(args) != 1 {
			s.reply("ERR usage: OPEN <endpoint>")
			return
		}
		if !s.need() {
			return
		}
		if _, err := s.srv.sys.Call(s.ctx, "/svc/net/open", netsvc.OpenRequest{Name: args[0]}); err != nil {
			s.fail(err)
			return
		}
		s.reply("OK")
	case "SEND":
		if len(args) < 2 {
			s.reply("ERR usage: SEND <endpoint> <text>")
			return
		}
		if !s.need() {
			return
		}
		req := netsvc.SendRequest{Name: args[0], Data: []byte(strings.Join(args[1:], " "))}
		if _, err := s.srv.sys.Call(s.ctx, "/svc/net/send", req); err != nil {
			s.fail(err)
			return
		}
		s.reply("OK")
	case "RECV":
		if len(args) != 1 {
			s.reply("ERR usage: RECV <endpoint>")
			return
		}
		if !s.need() {
			return
		}
		out, err := s.srv.sys.Call(s.ctx, "/svc/net/recv", netsvc.RecvRequest{Name: args[0]})
		if err != nil {
			s.fail(err)
			return
		}
		m := out.(netsvc.Message)
		s.reply("OK %s %s %q", m.From, m.FromClass, m.Data)
	case "JOURNAL":
		if len(args) < 1 {
			s.reply("ERR usage: JOURNAL <text>")
			return
		}
		if !s.need() {
			return
		}
		if _, err := s.srv.sys.Call(s.ctx, "/svc/log/append", strings.Join(args, " ")); err != nil {
			s.fail(err)
			return
		}
		s.reply("OK")
	case "STATS":
		if len(args) != 0 {
			s.reply("ERR usage: STATS")
			return
		}
		if !s.need() {
			return
		}
		if s.srv.sys.Telemetry() == nil {
			s.reply("ERR telemetry disabled")
			return
		}
		s.reply("OK %s", statsLine(s.srv.sys))
	case "TRACE":
		if len(args) > 1 {
			s.reply("ERR usage: TRACE [n]")
			return
		}
		if !s.need() {
			return
		}
		if s.srv.sys.Telemetry() == nil {
			s.reply("ERR telemetry disabled")
			return
		}
		n := 10
		if len(args) == 1 {
			parsed, err := strconv.Atoi(args[0])
			if err != nil || parsed < 1 {
				s.reply("ERR usage: TRACE [n]")
				return
			}
			n = parsed
		}
		traces := s.srv.sys.Telemetry().Recent(n, false)
		s.reply("OK %d", len(traces))
		for _, tr := range traces {
			s.reply("%s", tr.String())
		}
	case "EXPLAIN":
		if len(args) != 2 {
			s.reply("ERR usage: EXPLAIN <path> <modes>")
			return
		}
		if !s.need() {
			return
		}
		// The connection's own principal is the explained subject: a
		// remote caller may interrogate its own verdicts, not forge
		// questions on behalf of others.
		ex, err := s.srv.sys.Explain(s.ctx.SubjectName(), args[0], args[1])
		if err != nil {
			s.fail(err)
			return
		}
		lines := strings.Split(strings.TrimRight(ex.String(), "\n"), "\n")
		s.reply("OK %d", len(lines))
		for _, l := range lines {
			s.reply("%s", l)
		}
	case "EPOCHS":
		if len(args) > 1 {
			s.reply("ERR usage: EPOCHS [n]")
			return
		}
		if !s.need() {
			return
		}
		if s.srv.sys.Telemetry() == nil {
			s.reply("ERR telemetry disabled")
			return
		}
		n := 10
		if len(args) == 1 {
			parsed, err := strconv.Atoi(args[0])
			if err != nil || parsed < 1 {
				s.reply("ERR usage: EPOCHS [n]")
				return
			}
			n = parsed
		}
		recs := s.srv.sys.Telemetry().EpochJournal(n)
		s.reply("OK %d", len(recs))
		for _, r := range recs {
			s.reply("%s", r.String())
		}
	default:
		s.reply("ERR unknown command %q", cmd)
	}
}
