// Package remote exposes a secext world over a line-oriented TCP
// protocol: clients authenticate with a principal token and then issue
// mediated commands. It is the distributed face of the model — remote
// code and remote users (the paper's applets "originating from outside
// the organization" arrive over exactly such connections) get a subject
// bound to their authenticated principal, and every command funnels
// through the same reference monitor as local callers.
//
// Protocol (one request per line, responses are "OK[ detail]" or
// "ERR <reason>"):
//
//	AUTH <token>             bind the connection to a principal
//	LS <path>                list a name-space node
//	CREATE <path>            create a file via /svc/fs/create
//	READ <path>              read a file (response: OK <quoted bytes>)
//	WRITE <path> <text...>   destructive write
//	APPEND <path> <text...>  append (the report-up channel)
//	RM <path>                remove
//	CALL <service>           invoke a service with a nil argument
//	OPEN <endpoint>          open a message endpoint
//	SEND <endpoint> <text>   send a message
//	RECV <endpoint>          receive (response: OK <from> <class> <quoted>)
//	JOURNAL <text...>        append to the system journal
//	STATS                    one-line telemetry summary
//	TRACE [n]                recent decision traces: "OK <k>" then k lines
//	EXPLAIN <path> <modes>   provenance of a decision for the connected
//	                         principal: "OK <k>" then the k-line verdict tree
//	EPOCHS [n]               epoch-transition journal, newest first:
//	                         "OK <k>" then k lines
//	CHECK <path> <modes>     mediated access check for the connected
//	                         principal: "OK allowed" or "ERR denied: ..."
//	WHOAMI                   current principal and class
//	QUIT                     close the connection
//
// Protocol version 2 adds replication (all of these require a prior
// "HELLO 2"; HELLO itself is version 1 so old servers answer it with a
// clean unknown-command error instead of a hang):
//
//	HELLO <n>                negotiate: "OK proto <min(n, server)>", or a
//	                         clean ERR when n is below the server's minimum
//	SUBSCRIBE 0              become a replica (administrate on "/" required):
//	                         "OK <peer>", "SNAPSHOT <json>" (or, once the
//	                         session negotiated protocol >= 3, "SNAPSHOT-GZ
//	                         <base64(gzip(json))>"), then a stream of
//	                         "DELTA <json>" / "PING <v>" lines; the client
//	                         answers each with "ACK <version>"
//	BARRIER <v> [timeoutms]  block until every connected replica acked
//	                         epoch >= v (administrate on "/" required)
//	REPLICAS                 per-peer replication status: "OK <k>" then k lines
package remote

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/fsys"
	"secext/internal/replica"
	"secext/internal/services/netsvc"
	"secext/internal/subject"
)

// statsLine renders the one-line STATS summary of a telemetry snapshot.
func statsLine(sys *core.System) string {
	s := sys.Telemetry().Snapshot()
	allowed, denied := s.Mediated()
	return fmt.Sprintf(
		"mode=%s mediations=%d allowed=%d denied=%d cache_hits=%d cache_misses=%d admissions=%d traces=%d",
		s.Mode, allowed+denied, allowed, denied,
		s.Cache.Hits, s.Cache.Misses,
		s.Admissions.Allowed+s.Admissions.Denied, s.TracesSampled)
}

// Server serves the protocol over a listener.
type Server struct {
	sys *core.System

	// PingInterval paces the keepalive PINGs on replication streams
	// (liveness for the replicas' staleness deadline). Set before
	// Serve; zero means 500ms.
	PingInterval time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	pub    *replica.Publisher
}

// NewServer wraps a system. The system is expected to have the standard
// world services mounted (/svc/fs, /svc/net, /svc/log).
func NewServer(sys *core.System) *Server {
	return &Server{sys: sys, conns: make(map[net.Conn]bool)}
}

// SetPublisher enables the replication commands (SUBSCRIBE, BARRIER,
// REPLICAS). Without one they answer with a clean "not enabled" error.
func (s *Server) SetPublisher(pub *replica.Publisher) {
	s.mu.Lock()
	s.pub = pub
	s.mu.Unlock()
}

func (s *Server) publisher() *replica.Publisher {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pub
}

func (s *Server) pingEvery() time.Duration {
	if s.PingInterval > 0 {
		return s.PingInterval
	}
	return 500 * time.Millisecond
}

// Serve accepts connections until the listener is closed. Each
// connection is handled on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close terminates every active connection; the caller closes the
// listener itself.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
}

func (s *Server) drop(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// session is one authenticated connection.
type session struct {
	srv  *Server
	ctx  *subject.Context
	out  *bufio.Writer
	conn net.Conn
	sc   *bufio.Scanner
	// proto is the negotiated protocol version: 1 until the client
	// sends HELLO (pre-replication clients never do).
	proto int
	// hijacked marks that SUBSCRIBE converted the connection into a
	// replication stream; when the stream ends the connection dies.
	hijacked bool
}

func (s *Server) handle(conn net.Conn) {
	defer s.drop(conn)
	sc := bufio.NewScanner(conn)
	// Replication snapshots and deltas are single lines that can carry
	// a whole policy tree; raise the scanner ceiling far above the
	// interactive default.
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024)
	sess := &session{srv: s, out: bufio.NewWriter(conn), conn: conn, sc: sc, proto: 1}
	sess.reply("OK secext ready")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "QUIT") {
			sess.reply("OK bye")
			return
		}
		sess.dispatch(line)
		if sess.hijacked {
			return
		}
	}
}

func (s *session) reply(format string, args ...any) {
	fmt.Fprintf(s.out, format+"\n", args...)
	s.out.Flush()
}

func (s *session) fail(err error) {
	if core.IsDenied(err) {
		s.reply("ERR denied: %v", err)
		return
	}
	s.reply("ERR %v", err)
}

// need reports whether the session is authenticated, complaining if
// not.
func (s *session) need() bool {
	if s.ctx == nil {
		s.reply("ERR authenticate first (AUTH <token>)")
		return false
	}
	return true
}

func (s *session) dispatch(line string) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	args := fields[1:]
	switch cmd {
	case "AUTH":
		if len(args) != 1 {
			s.reply("ERR usage: AUTH <token>")
			return
		}
		ctx, err := s.srv.sys.NewContextFromToken(args[0])
		if err != nil {
			s.reply("ERR authentication failed")
			return
		}
		s.ctx = ctx
		s.reply("OK %s %s", ctx.SubjectName(), ctx.Class())
	case "WHOAMI":
		if s.need() {
			s.reply("OK %s %s", s.ctx.SubjectName(), s.ctx.Class())
		}
	case "LS":
		if len(args) != 1 {
			s.reply("ERR usage: LS <path>")
			return
		}
		if !s.need() {
			return
		}
		entries, err := s.srv.sys.List(s.ctx, args[0])
		if err != nil {
			s.fail(err)
			return
		}
		s.reply("OK %s", strings.Join(entries, " "))
	case "CREATE", "READ", "RM":
		if len(args) != 1 {
			s.reply("ERR usage: %s <path>", cmd)
			return
		}
		if !s.need() {
			return
		}
		svc := map[string]string{"CREATE": "create", "READ": "read", "RM": "remove"}[cmd]
		out, err := s.srv.sys.Call(s.ctx, "/svc/fs/"+svc, fsys.Request{Path: args[0]})
		if err != nil {
			s.fail(err)
			return
		}
		if b, ok := out.([]byte); ok {
			s.reply("OK %q", b)
			return
		}
		s.reply("OK")
	case "WRITE", "APPEND":
		if len(args) < 2 {
			s.reply("ERR usage: %s <path> <text>", cmd)
			return
		}
		if !s.need() {
			return
		}
		req := fsys.Request{Path: args[0], Data: []byte(strings.Join(args[1:], " "))}
		if _, err := s.srv.sys.Call(s.ctx, "/svc/fs/"+strings.ToLower(cmd), req); err != nil {
			s.fail(err)
			return
		}
		s.reply("OK")
	case "CALL":
		if len(args) != 1 {
			s.reply("ERR usage: CALL <service>")
			return
		}
		if !s.need() {
			return
		}
		out, err := s.srv.sys.Call(s.ctx, args[0], nil)
		if err != nil {
			s.fail(err)
			return
		}
		s.reply("OK %v", out)
	case "OPEN":
		if len(args) != 1 {
			s.reply("ERR usage: OPEN <endpoint>")
			return
		}
		if !s.need() {
			return
		}
		if _, err := s.srv.sys.Call(s.ctx, "/svc/net/open", netsvc.OpenRequest{Name: args[0]}); err != nil {
			s.fail(err)
			return
		}
		s.reply("OK")
	case "SEND":
		if len(args) < 2 {
			s.reply("ERR usage: SEND <endpoint> <text>")
			return
		}
		if !s.need() {
			return
		}
		req := netsvc.SendRequest{Name: args[0], Data: []byte(strings.Join(args[1:], " "))}
		if _, err := s.srv.sys.Call(s.ctx, "/svc/net/send", req); err != nil {
			s.fail(err)
			return
		}
		s.reply("OK")
	case "RECV":
		if len(args) != 1 {
			s.reply("ERR usage: RECV <endpoint>")
			return
		}
		if !s.need() {
			return
		}
		out, err := s.srv.sys.Call(s.ctx, "/svc/net/recv", netsvc.RecvRequest{Name: args[0]})
		if err != nil {
			s.fail(err)
			return
		}
		m := out.(netsvc.Message)
		s.reply("OK %s %s %q", m.From, m.FromClass, m.Data)
	case "JOURNAL":
		if len(args) < 1 {
			s.reply("ERR usage: JOURNAL <text>")
			return
		}
		if !s.need() {
			return
		}
		if _, err := s.srv.sys.Call(s.ctx, "/svc/log/append", strings.Join(args, " ")); err != nil {
			s.fail(err)
			return
		}
		s.reply("OK")
	case "STATS":
		if len(args) != 0 {
			s.reply("ERR usage: STATS")
			return
		}
		if !s.need() {
			return
		}
		if s.srv.sys.Telemetry() == nil {
			s.reply("ERR telemetry disabled")
			return
		}
		s.reply("OK %s", statsLine(s.srv.sys))
	case "TRACE":
		if len(args) > 1 {
			s.reply("ERR usage: TRACE [n]")
			return
		}
		if !s.need() {
			return
		}
		if s.srv.sys.Telemetry() == nil {
			s.reply("ERR telemetry disabled")
			return
		}
		n := 10
		if len(args) == 1 {
			parsed, err := strconv.Atoi(args[0])
			if err != nil || parsed < 1 {
				s.reply("ERR usage: TRACE [n]")
				return
			}
			n = parsed
		}
		traces := s.srv.sys.Telemetry().Recent(n, false)
		s.reply("OK %d", len(traces))
		for _, tr := range traces {
			s.reply("%s", tr.String())
		}
	case "EXPLAIN":
		if len(args) != 2 {
			s.reply("ERR usage: EXPLAIN <path> <modes>")
			return
		}
		if !s.need() {
			return
		}
		// The connection's own principal is the explained subject: a
		// remote caller may interrogate its own verdicts, not forge
		// questions on behalf of others.
		ex, err := s.srv.sys.Explain(s.ctx.SubjectName(), args[0], args[1])
		if err != nil {
			s.fail(err)
			return
		}
		lines := strings.Split(strings.TrimRight(ex.String(), "\n"), "\n")
		s.reply("OK %d", len(lines))
		for _, l := range lines {
			s.reply("%s", l)
		}
	case "EPOCHS":
		if len(args) > 1 {
			s.reply("ERR usage: EPOCHS [n]")
			return
		}
		if !s.need() {
			return
		}
		if s.srv.sys.Telemetry() == nil {
			s.reply("ERR telemetry disabled")
			return
		}
		n := 10
		if len(args) == 1 {
			parsed, err := strconv.Atoi(args[0])
			if err != nil || parsed < 1 {
				s.reply("ERR usage: EPOCHS [n]")
				return
			}
			n = parsed
		}
		recs := s.srv.sys.Telemetry().EpochJournal(n)
		s.reply("OK %d", len(recs))
		for _, r := range recs {
			s.reply("%s", r.String())
		}
	case "CHECK":
		if len(args) != 2 {
			s.reply("ERR usage: CHECK <path> <modes>")
			return
		}
		if !s.need() {
			return
		}
		modes, err := acl.ParseMode(args[1])
		if err != nil {
			s.fail(err)
			return
		}
		if _, err := s.srv.sys.CheckData(s.ctx, args[0], modes); err != nil {
			s.fail(err)
			return
		}
		s.reply("OK allowed")
	case "HELLO":
		if len(args) != 1 {
			s.reply("ERR usage: HELLO <version>")
			return
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 {
			s.reply("ERR usage: HELLO <version>")
			return
		}
		if n < replica.MinProto {
			s.reply("ERR protocol version %d no longer supported (minimum %d)", n, replica.MinProto)
			return
		}
		if n > replica.ProtoVersion {
			n = replica.ProtoVersion
		}
		s.proto = n
		s.reply("OK proto %d", n)
	case "SUBSCRIBE":
		if len(args) != 1 {
			s.reply("ERR usage: SUBSCRIBE 0")
			return
		}
		if s.proto < 2 {
			s.reply("ERR SUBSCRIBE requires protocol >= 2 (send HELLO 2 first)")
			return
		}
		if !s.need() {
			return
		}
		pub := s.srv.publisher()
		if pub == nil {
			s.reply("ERR replication not enabled on this server")
			return
		}
		// Subscribing hands out the entire policy (tree, ACLs, token
		// secret): only a principal holding administrate on the root
		// may become a replica.
		if _, err := s.srv.sys.CheckData(s.ctx, "/", acl.Administrate); err != nil {
			s.fail(err)
			return
		}
		peer, snap, err := pub.Subscribe(s.ctx.SubjectName())
		if err != nil {
			s.fail(err)
			return
		}
		s.reply("OK %s", peer.Name())
		// Protocol >= 3 peers take the bootstrap snapshot gzipped —
		// it is the one message whose size scales with the whole tree.
		// Older peers keep the plaintext form, so a mixed fleet
		// upgrades one process at a time.
		if s.proto >= 3 {
			gz, err := pub.CompressSnapshotFor(peer, snap)
			if err != nil {
				pub.Remove(peer)
				s.fail(err)
				return
			}
			s.reply("SNAPSHOT-GZ %s", gz)
		} else {
			s.reply("SNAPSHOT %s", snap)
		}
		s.stream(pub, peer)
	case "BARRIER":
		if len(args) < 1 || len(args) > 2 {
			s.reply("ERR usage: BARRIER <version> [timeout-ms]")
			return
		}
		if s.proto < 2 {
			s.reply("ERR BARRIER requires protocol >= 2 (send HELLO 2 first)")
			return
		}
		if !s.need() {
			return
		}
		pub := s.srv.publisher()
		if pub == nil {
			s.reply("ERR replication not enabled on this server")
			return
		}
		if _, err := s.srv.sys.CheckData(s.ctx, "/", acl.Administrate); err != nil {
			s.fail(err)
			return
		}
		v, err := strconv.ParseUint(args[0], 10, 64)
		if err != nil {
			s.reply("ERR usage: BARRIER <version> [timeout-ms]")
			return
		}
		timeout := 5 * time.Second
		if len(args) == 2 {
			ms, err := strconv.Atoi(args[1])
			if err != nil || ms < 1 {
				s.reply("ERR usage: BARRIER <version> [timeout-ms]")
				return
			}
			timeout = time.Duration(ms) * time.Millisecond
		}
		if err := pub.Barrier(v, timeout); err != nil {
			s.fail(err)
			return
		}
		s.reply("OK barrier v%d", v)
	case "REPLICAS":
		if len(args) != 0 {
			s.reply("ERR usage: REPLICAS")
			return
		}
		if !s.need() {
			return
		}
		pub := s.srv.publisher()
		if pub == nil {
			s.reply("ERR replication not enabled on this server")
			return
		}
		st := pub.Stats()
		s.reply("OK %d", len(st.Peers))
		for _, peer := range st.Peers {
			s.reply("peer=%s acked=v%d lag=%d deltas=%d delta_bytes=%d snapshot_bytes=%d",
				peer.Name, peer.Acked, peer.Lag, peer.Deltas, peer.DeltaBytes, peer.SnapshotBytes)
		}
	default:
		s.reply("ERR unknown command %q", cmd)
	}
}

// stream converts the connection into a replication stream: a writer
// goroutine drains the peer's delta queue (interleaving keepalive
// PINGs), while this goroutine keeps reading the client's ACK lines
// and feeding them to the publisher — where they satisfy revocation
// barriers. Runs until either side hangs up or the publisher drops the
// peer (queue overflow, shutdown).
func (s *session) stream(pub *replica.Publisher, peer *replica.Peer) {
	s.hijacked = true
	defer pub.Remove(peer)
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(s.srv.pingEvery())
		defer ticker.Stop()
		for {
			select {
			case msg, ok := <-peer.Ch():
				if !ok {
					// Dropped by the publisher: hang up so the replica
					// notices and re-bootstraps (or fails closed).
					s.conn.Close()
					return
				}
				s.reply("DELTA %s", msg.Payload)
			case <-ticker.C:
				s.reply("PING %d", s.srv.sys.Names().Version())
			case <-quit:
				return
			}
		}
	}()
	for s.sc.Scan() {
		line := strings.TrimSpace(s.sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if strings.EqualFold(fields[0], "ACK") && len(fields) == 2 {
			if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
				pub.Ack(peer, v)
			}
			continue
		}
		if strings.EqualFold(fields[0], "QUIT") {
			break
		}
		// Anything else on a replication stream is ignored; the
		// connection is single-purpose now.
	}
	close(quit)
	<-done
}
