package remote

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"secext"
)

// client is a test-side protocol client.
type client struct {
	t    *testing.T
	conn net.Conn
	rd   *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	c := &client{t: t, conn: conn, rd: bufio.NewReader(conn)}
	if got := c.readLine(); !strings.HasPrefix(got, "OK secext ready") {
		t.Fatalf("greeting = %q", got)
	}
	return c
}

func (c *client) readLine() string {
	c.t.Helper()
	line, err := c.rd.ReadString('\n')
	if err != nil {
		c.t.Fatalf("read: %v", err)
	}
	return strings.TrimSpace(line)
}

func (c *client) cmd(format string, args ...any) string {
	c.t.Helper()
	fmt.Fprintf(c.conn, format+"\n", args...)
	return c.readLine()
}

func (c *client) expectOK(format string, args ...any) string {
	c.t.Helper()
	got := c.cmd(format, args...)
	if !strings.HasPrefix(got, "OK") {
		c.t.Fatalf("%s: got %q, want OK", fmt.Sprintf(format, args...), got)
	}
	return got
}

func (c *client) expectErr(format string, args ...any) string {
	c.t.Helper()
	got := c.cmd(format, args...)
	if !strings.HasPrefix(got, "ERR") {
		c.t.Fatalf("%s: got %q, want ERR", fmt.Sprintf(format, args...), got)
	}
	return got
}

// startServer builds a world with two principals and serves it on a
// loopback listener.
func startServer(t *testing.T) (addr, aliceTok, eveTok string) {
	t.Helper()
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("eve", "others"); err != nil {
		t.Fatal(err)
	}
	aliceTok, err = w.Sys.Registry().IssueToken("alice")
	if err != nil {
		t.Fatal(err)
	}
	eveTok, err = w.Sys.Registry().IssueToken("eve")
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(w.Sys)
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { srv.Close(); l.Close() })
	return l.Addr().String(), aliceTok, eveTok
}

func TestAuthRequired(t *testing.T) {
	addr, aliceTok, _ := startServer(t)
	c := dial(t, addr)
	c.expectErr("LS /")
	c.expectErr("READ /fs/x")
	c.expectErr("AUTH bad-token")
	got := c.expectOK("AUTH %s", aliceTok)
	if !strings.Contains(got, "alice") || !strings.Contains(got, "organization:{dept-1}") {
		t.Errorf("AUTH reply = %q", got)
	}
	if got := c.expectOK("WHOAMI"); !strings.Contains(got, "alice") {
		t.Errorf("WHOAMI = %q", got)
	}
}

func TestRemoteFileRoundTrip(t *testing.T) {
	addr, aliceTok, eveTok := startServer(t)
	alice := dial(t, addr)
	alice.expectOK("AUTH %s", aliceTok)
	alice.expectOK("CREATE /fs/remote-note")
	alice.expectOK("WRITE /fs/remote-note hello from afar")
	got := alice.expectOK("READ /fs/remote-note")
	if !strings.Contains(got, "hello from afar") {
		t.Errorf("READ = %q", got)
	}
	if got := alice.expectOK("LS /fs"); !strings.Contains(got, "remote-note") {
		t.Errorf("LS = %q", got)
	}

	// Eve's connection carries Eve's authority, nothing more.
	eve := dial(t, addr)
	eve.expectOK("AUTH %s", eveTok)
	if got := eve.expectErr("READ /fs/remote-note"); !strings.Contains(got, "denied") {
		t.Errorf("eve READ = %q", got)
	}
	eve.expectErr("RM /fs/remote-note")

	alice.expectOK("RM /fs/remote-note")
}

func TestRemoteMessaging(t *testing.T) {
	addr, aliceTok, eveTok := startServer(t)
	alice := dial(t, addr)
	alice.expectOK("AUTH %s", aliceTok)
	alice.expectOK("OPEN inbox")

	eve := dial(t, addr)
	eve.expectOK("AUTH %s", eveTok)
	// Eve (below) can report up into alice's endpoint...
	eve.expectOK("SEND inbox psst from eve")
	// ...but cannot receive from it.
	eve.expectErr("RECV inbox")

	got := alice.expectOK("RECV inbox")
	if !strings.Contains(got, "eve") || !strings.Contains(got, "psst from eve") {
		t.Errorf("RECV = %q", got)
	}
}

func TestRemoteJournalAndCall(t *testing.T) {
	addr, aliceTok, _ := startServer(t)
	c := dial(t, addr)
	c.expectOK("AUTH %s", aliceTok)
	c.expectOK("JOURNAL remote event")
	// CALL of a denied or missing service reports cleanly.
	c.expectErr("CALL /svc/nonexistent")
	// Usage errors.
	c.expectErr("LS")
	c.expectErr("WRITE /fs/x")
	c.expectErr("FROBNICATE")
	// QUIT closes politely.
	if got := c.cmd("QUIT"); !strings.HasPrefix(got, "OK bye") {
		t.Errorf("QUIT = %q", got)
	}
}

func TestProtocolEdgeCases(t *testing.T) {
	addr, aliceTok, eveTok := startServer(t)
	c := dial(t, addr)
	// Usage errors before and after auth.
	c.expectErr("AUTH")
	c.expectErr("AUTH a b")
	c.expectOK("AUTH %s", aliceTok)
	c.expectErr("CREATE")
	c.expectErr("APPEND /fs/x")
	c.expectErr("CALL")
	c.expectErr("OPEN")
	c.expectErr("SEND ep")
	c.expectErr("RECV")
	c.expectErr("JOURNAL")
	// Re-AUTH switches identity mid-session.
	got := c.expectOK("AUTH %s", eveTok)
	if !strings.Contains(got, "eve") {
		t.Errorf("re-auth = %q", got)
	}
	if got := c.expectOK("WHOAMI"); !strings.Contains(got, "eve") {
		t.Errorf("WHOAMI after re-auth = %q", got)
	}
	// Recv on an empty endpoint reports an error, not a hang.
	c.expectOK("AUTH %s", aliceTok)
	c.expectOK("OPEN empty-ep")
	c.expectErr("RECV empty-ep")
	// Blank lines are ignored; the next command still works.
	fmt.Fprintf(c.conn, "\n\nWHOAMI\n")
	if got := c.readLine(); !strings.HasPrefix(got, "OK") {
		t.Errorf("after blank lines: %q", got)
	}
}

func TestServerClose(t *testing.T) {
	addr, aliceTok, _ := startServer(t)
	c := dial(t, addr)
	c.expectOK("AUTH %s", aliceTok)
	// Closing the server drops the connection; subsequent reads fail
	// rather than hang. (startServer's cleanup calls Close; here we
	// just verify an early QUIT also leaves the server healthy for
	// other connections.)
	if got := c.cmd("QUIT"); !strings.HasPrefix(got, "OK bye") {
		t.Errorf("QUIT = %q", got)
	}
	c2 := dial(t, addr)
	c2.expectOK("AUTH %s", aliceTok)
}

func TestConcurrentSessions(t *testing.T) {
	addr, aliceTok, eveTok := startServer(t)
	done := make(chan bool, 2)
	go func() {
		c := dial(t, addr)
		c.expectOK("AUTH %s", aliceTok)
		for i := 0; i < 30; i++ {
			c.expectOK("CREATE /fs/a%d", i)
		}
		done <- true
	}()
	go func() {
		c := dial(t, addr)
		c.expectOK("AUTH %s", eveTok)
		for i := 0; i < 30; i++ {
			c.expectOK("CREATE /fs/e%d", i)
		}
		done <- true
	}()
	<-done
	<-done
}

// TestRemoteQuotaGuard installs the deny-by-default quota guard in the
// served world and shows the budget being enforced over the wire: a
// subject with no budget is refused outright, and a granted budget runs
// out. The quota guard is stateful, so the decision cache is bypassed
// and every remote request reaches the meter.
func TestRemoteQuotaGuard(t *testing.T) {
	quota := secext.NewQuotaGuard("/fs")
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
		Guards:     []secext.Guard{quota},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("eve", "others"); err != nil {
		t.Fatal(err)
	}
	aliceTok, err := w.Sys.Registry().IssueToken("alice")
	if err != nil {
		t.Fatal(err)
	}
	eveTok, err := w.Sys.Registry().IssueToken("eve")
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(w.Sys)
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { srv.Close(); l.Close() })

	quota.SetQuota("alice", 1000)
	alice := dial(t, l.Addr().String())
	alice.expectOK("AUTH %s", aliceTok)
	alice.expectOK("CREATE /fs/metered")
	alice.expectOK("WRITE /fs/metered rationed bytes")
	alice.expectOK("READ /fs/metered")
	if rem, ok := quota.Remaining("alice"); !ok || rem >= 1000 {
		t.Errorf("Remaining(alice) = %d, %v; want a spent budget", rem, ok)
	}

	// Eve has no budget: deny-by-default, with the guard's reason on
	// the wire. She works on her own file so the discretionary and
	// mandatory guards allow and the quota guard decides.
	eve := dial(t, l.Addr().String())
	eve.expectOK("AUTH %s", eveTok)
	eve.expectOK("CREATE /fs/eve-file")
	if got := eve.expectErr("WRITE /fs/eve-file denied bytes"); !strings.Contains(got, "quota: no budget assigned") {
		t.Errorf("eve WRITE = %q, want quota denial", got)
	}

	// Alice's budget runs dry.
	quota.SetQuota("alice", 0)
	if got := alice.expectErr("READ /fs/metered"); !strings.Contains(got, "quota: exhausted") {
		t.Errorf("alice exhausted READ = %q", got)
	}
}

func TestRemoteStatsAndTrace(t *testing.T) {
	addr, aliceTok, _ := startServer(t)
	c := dial(t, addr)
	c.expectErr("STATS") // introspection needs authority too
	c.expectErr("TRACE")
	c.expectOK("AUTH %s", aliceTok)
	c.expectOK("CREATE /fs/stats-note")

	got := c.expectOK("STATS")
	for _, want := range []string{"mode=sampled", "mediations=", "cache_hits=", "traces="} {
		if !strings.Contains(got, want) {
			t.Errorf("STATS = %q, missing %q", got, want)
		}
	}

	c.expectErr("TRACE nope")
	c.expectErr("TRACE 0")
	c.expectErr("TRACE 1 2")
	head := c.expectOK("TRACE 5")
	var k int
	if _, err := fmt.Sscanf(head, "OK %d", &k); err != nil {
		t.Fatalf("TRACE header = %q: %v", head, err)
	}
	// The sampler always selects the first mediation after boot, so a
	// fresh world has at least one trace to return.
	if k < 1 {
		t.Fatalf("TRACE returned %d traces, want at least 1", k)
	}
	for i := 0; i < k; i++ {
		line := c.readLine()
		if !strings.Contains(line, "trace #") || !strings.Contains(line, "seq=") {
			t.Errorf("trace line %d = %q", i, line)
		}
	}
}

// readBody reads the k payload lines announced by an "OK <k>" header
// and returns them joined.
func (c *client) readBody(head string) string {
	c.t.Helper()
	var k int
	if _, err := fmt.Sscanf(head, "OK %d", &k); err != nil {
		c.t.Fatalf("framing header = %q: %v", head, err)
	}
	lines := make([]string, k)
	for i := range lines {
		lines[i] = c.readLine()
	}
	return strings.Join(lines, "\n")
}

func TestRemoteStatsTraceArgErrors(t *testing.T) {
	addr, aliceTok, _ := startServer(t)
	c := dial(t, addr)
	c.expectOK("AUTH %s", aliceTok)
	// Malformed arguments are usage errors, not silent defaults.
	if got := c.expectErr("STATS extra"); !strings.Contains(got, "usage: STATS") {
		t.Errorf("STATS extra = %q", got)
	}
	for _, bad := range []string{"TRACE nope", "TRACE 0", "TRACE -3", "TRACE 1 2"} {
		if got := c.expectErr(bad); !strings.Contains(got, "usage: TRACE [n]") {
			t.Errorf("%s = %q", bad, got)
		}
	}
	for _, bad := range []string{"EPOCHS nope", "EPOCHS 0", "EPOCHS 1 2"} {
		if got := c.expectErr(bad); !strings.Contains(got, "usage: EPOCHS [n]") {
			t.Errorf("%s = %q", bad, got)
		}
	}
	c.expectErr("EXPLAIN")
	c.expectErr("EXPLAIN /fs")
	c.expectErr("EXPLAIN /fs read extra")
}

// TestRemoteTelemetryDisabled serves a world built with telemetry off:
// the introspection commands that depend on it report the condition
// instead of pretending to succeed, while EXPLAIN (which re-evaluates
// against the epoch directly) still works.
func TestRemoteTelemetryDisabled(t *testing.T) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
		Telemetry:  secext.TelemetryOptions{Mode: secext.TelemetryOff},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		t.Fatal(err)
	}
	tok, err := w.Sys.Registry().IssueToken("alice")
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(w.Sys)
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { srv.Close(); l.Close() })

	c := dial(t, l.Addr().String())
	c.expectOK("AUTH %s", tok)
	for _, cmd := range []string{"STATS", "TRACE", "EPOCHS"} {
		if got := c.expectErr(cmd); !strings.Contains(got, "telemetry disabled") {
			t.Errorf("%s with telemetry off = %q", cmd, got)
		}
	}
	c.expectOK("CREATE /fs/dark-note")
	head := c.expectOK("EXPLAIN /fs/dark-note read")
	if body := c.readBody(head); !strings.Contains(body, "ALLOW alice read on /fs/dark-note") {
		t.Errorf("EXPLAIN with telemetry off = %q", body)
	}
}

// TestRemoteExplain drives the full provenance pipeline over real TCP:
// an allowed check names the exact ACL entry that granted it, and a
// denied check names the fail-closed ACL verdict, the decisive guard,
// and the MAC dominance comparison with both classes.
func TestRemoteExplain(t *testing.T) {
	addr, aliceTok, eveTok := startServer(t)
	alice := dial(t, addr)
	alice.expectOK("AUTH %s", aliceTok)
	alice.expectOK("CREATE /fs/secret")

	// Allowed: the owner entry created by /svc/fs/create decides.
	body := alice.readBody(alice.expectOK("EXPLAIN /fs/secret read"))
	for _, want := range []string{
		"ALLOW alice read on /fs/secret",
		"epoch v",
		"subject class: organization:{dept-1}",
		"matched: allow alice read,write,write-append,administrate,delete",
		"want read => ALLOW",
		"mac: subject organization:{dept-1} vs object organization:{dept-1}",
		"verdict: allow",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("allowed EXPLAIN missing %q in:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "route compiled") && !strings.Contains(body, "route walk") {
		t.Errorf("allowed EXPLAIN names no route:\n%s", body)
	}

	// Denied: eve (class others, below the file) gets the whole story —
	// no ACL entry matches her, the DAC guard is decisive, and the MAC
	// report shows she does not dominate the object.
	eve := dial(t, addr)
	eve.expectOK("AUTH %s", eveTok)
	body = eve.readBody(eve.expectOK("EXPLAIN /fs/secret read"))
	for _, want := range []string{
		"DENY eve read on /fs/secret",
		"route walk", // denials always take the walk
		"no entries matched the subject (fail-closed)",
		"want read => DENY",
		"<- decided here",
		"mac: subject others vs object organization:{dept-1}",
		"subject dominates object: false",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("denied EXPLAIN missing %q in:\n%s", want, body)
		}
	}

	// A structurally missing path explains the resolve failure.
	body = alice.readBody(alice.expectOK("EXPLAIN /fs/no-such read"))
	if !strings.Contains(body, "resolve:") {
		t.Errorf("missing-path EXPLAIN = %q", body)
	}
	// Bad modes are an error, not a panic.
	alice.expectErr("EXPLAIN /fs/secret frobnicate")
}

// TestRemoteEpochs reads the epoch-transition journal over the wire:
// each mutation published at least one epoch, and the rendered records
// carry version, shard, and compile information.
func TestRemoteEpochs(t *testing.T) {
	addr, aliceTok, _ := startServer(t)
	c := dial(t, addr)
	c.expectOK("AUTH %s", aliceTok)
	c.expectOK("CREATE /fs/epoch-a")
	c.expectOK("CREATE /fs/epoch-b")

	head := c.expectOK("EPOCHS 5")
	var k int
	if _, err := fmt.Sscanf(head, "OK %d", &k); err != nil {
		t.Fatalf("EPOCHS header = %q: %v", head, err)
	}
	if k < 2 {
		t.Fatalf("EPOCHS returned %d records, want at least 2", k)
	}
	for i := 0; i < k; i++ {
		line := c.readLine()
		for _, want := range []string{"epoch v", "shards=", "compile=", "publish="} {
			if !strings.Contains(line, want) {
				t.Errorf("EPOCHS line %d = %q, missing %q", i, line, want)
			}
		}
	}
	// Unauthenticated connections get nothing.
	anon := dial(t, addr)
	anon.expectErr("EPOCHS")
	anon.expectErr("EXPLAIN /fs/epoch-a read")
}
