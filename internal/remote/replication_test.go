package remote

// Protocol-level tests for the v2 additions: HELLO version
// negotiation (both directions, over real TCP), the SUBSCRIBE /
// BARRIER / REPLICAS gates, and the CHECK command. The end-to-end
// replication behavior (stream, staleness, barrier semantics) is
// tested in internal/replica; these tests pin the wire surface.

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"secext"
	"secext/internal/replica"
)

// startReplServer is startServer plus a replication publisher and an
// "admin" principal holding administrate on the root.
func startReplServer(t *testing.T) (addr, adminTok, eveTok string, w *secext.World, pub *replica.Publisher) {
	t.Helper()
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []struct{ name, class string }{
		{"admin", "others"}, {"eve", "others"},
	} {
		if _, err := w.Sys.AddPrincipal(spec.name, spec.class); err != nil {
			t.Fatal(err)
		}
	}
	rootACL, err := w.Sys.Names().ACLOf("/")
	if err != nil {
		t.Fatal(err)
	}
	rootACL.Add(secext.Allow("admin", secext.Administrate))
	if err := w.Sys.Names().SetACLUnchecked("/", rootACL); err != nil {
		t.Fatal(err)
	}
	adminTok, err = w.Sys.Registry().IssueToken("admin")
	if err != nil {
		t.Fatal(err)
	}
	eveTok, err = w.Sys.Registry().IssueToken("eve")
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(w.Sys)
	srv.PingInterval = 50 * time.Millisecond
	pub = replica.NewPublisher(w.Sys)
	srv.SetPublisher(pub)
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { pub.Close(); srv.Close(); l.Close() })
	return l.Addr().String(), adminTok, eveTok, w, pub
}

// TestHelloNegotiation: the server clamps to its own version, keeps
// serving v1 commands regardless, and rejects malformed requests
// cleanly.
func TestHelloNegotiation(t *testing.T) {
	addr, aliceTok, _ := startServer(t)
	c := dial(t, addr)
	if got := c.expectOK("HELLO 2"); got != "OK proto 2" {
		t.Errorf("HELLO 2 = %q", got)
	}
	// A client from the future: the server answers with the highest
	// version it speaks, never an error.
	if got := c.expectOK("HELLO 99"); got != fmt.Sprintf("OK proto %d", replica.ProtoVersion) {
		t.Errorf("HELLO 99 = %q", got)
	}
	c.expectErr("HELLO 0")
	c.expectErr("HELLO abc")
	c.expectErr("HELLO")
	// Negotiation does not disturb the v1 session surface.
	c.expectOK("AUTH %s", aliceTok)
	c.expectOK("LS /")
}

// TestOldClientAgainstNewServer: a v1 client never sends HELLO; every
// v1 command keeps working, and the v2-only commands answer with a
// clean, actionable error instead of hanging or disconnecting.
func TestOldClientAgainstNewServer(t *testing.T) {
	addr, adminTok, _, _, _ := startReplServer(t)
	c := dial(t, addr)
	c.expectOK("AUTH %s", adminTok)
	c.expectOK("LS /")
	got := c.expectErr("SUBSCRIBE 0")
	if !strings.Contains(got, "HELLO 2") {
		t.Errorf("SUBSCRIBE without HELLO = %q, want a hint to send HELLO 2", got)
	}
	got = c.expectErr("BARRIER 1")
	if !strings.Contains(got, "HELLO 2") {
		t.Errorf("BARRIER without HELLO = %q, want a hint to send HELLO 2", got)
	}
	// The connection survives the rejections.
	c.expectOK("WHOAMI")
}

// TestNewClientAgainstOldServer: replica.Connect against a primary
// that predates HELLO must fail with a clean error naming the
// protocol gap, not a parse panic or a hang. The old server is
// simulated faithfully: greeting, then "ERR unknown command" for
// anything it does not know — exactly what the pre-v2 dispatch did.
func TestNewClientAgainstOldServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fmt.Fprintf(conn, "OK secext ready\n")
		sc := bufio.NewScanner(conn)
		for sc.Scan() {
			cmd, _, _ := strings.Cut(sc.Text(), " ")
			fmt.Fprintf(conn, "ERR unknown command %q\n", cmd)
		}
	}()
	_, err = replica.Connect(replica.Options{Addr: l.Addr().String(), Token: "x"})
	if err == nil {
		t.Fatal("Connect succeeded against a v1 server")
	}
	if !strings.Contains(err.Error(), "version negotiation") {
		t.Errorf("error = %v, want it to name version negotiation", err)
	}
}

// TestSubscribeGates: every precondition of SUBSCRIBE answers with its
// own clean error — protocol, authentication, authorization.
func TestSubscribeGates(t *testing.T) {
	addr, adminTok, eveTok, _, _ := startReplServer(t)

	// Authenticated but still on protocol 1.
	c := dial(t, addr)
	c.expectOK("AUTH %s", adminTok)
	c.expectErr("SUBSCRIBE 0")

	// Protocol 2 but unauthenticated.
	c2 := dial(t, addr)
	c2.expectOK("HELLO 2")
	got := c2.expectErr("SUBSCRIBE 0")
	if !strings.Contains(got, "authenticate") {
		t.Errorf("unauthenticated SUBSCRIBE = %q", got)
	}

	// Authenticated, protocol 2, but no administrate on "/".
	c3 := dial(t, addr)
	c3.expectOK("HELLO 2")
	c3.expectOK("AUTH %s", eveTok)
	got = c3.expectErr("SUBSCRIBE 0")
	if !strings.Contains(got, "denied") {
		t.Errorf("non-admin SUBSCRIBE = %q", got)
	}

	// Malformed.
	c3.expectErr("SUBSCRIBE")
	c3.expectErr("SUBSCRIBE 0 extra")
}

// TestSubscribeWithoutPublisher: a server that never called
// SetPublisher rejects the replication commands with "not enabled".
func TestSubscribeWithoutPublisher(t *testing.T) {
	addr, aliceTok, _ := startServer(t)
	c := dial(t, addr)
	c.expectOK("HELLO 2")
	c.expectOK("AUTH %s", aliceTok)
	for _, cmd := range []string{"SUBSCRIBE 0", "BARRIER 1", "REPLICAS"} {
		got := c.expectErr(cmd)
		if !strings.Contains(got, "not enabled") {
			t.Errorf("%s = %q, want a replication-not-enabled error", cmd, got)
		}
	}
}

// TestBarrierAndReplicasCommands: the admin surface over the wire —
// an empty fleet satisfies any barrier instantly; a connected replica
// shows up in REPLICAS with its ack state.
func TestBarrierAndReplicasCommands(t *testing.T) {
	addr, adminTok, _, w, _ := startReplServer(t)
	c := dial(t, addr)
	c.expectOK("HELLO 2")
	c.expectOK("AUTH %s", adminTok)
	if got := c.expectOK("REPLICAS"); got != "OK 0" {
		t.Errorf("REPLICAS with no fleet = %q", got)
	}
	v := w.Sys.Names().Version()
	if got := c.expectOK("BARRIER %d", v); got != fmt.Sprintf("OK barrier v%d", v) {
		t.Errorf("BARRIER on empty fleet = %q", got)
	}
	c.expectErr("BARRIER")
	c.expectErr("BARRIER abc")
	c.expectErr("BARRIER 1 0")

	r, err := replica.Connect(replica.Options{Addr: addr, Token: adminTok})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := c.expectOK("REPLICAS"); got != "OK 1" {
		t.Errorf("REPLICAS with one replica = %q", got)
	}
	line := c.readLine()
	if !strings.Contains(line, "peer=admin#") || !strings.Contains(line, "acked=v") {
		t.Errorf("REPLICAS peer line = %q", line)
	}
	// A barrier raised over the wire waits for the live replica too.
	nv, err := w.Sys.Names().SetACLUncheckedAt("/fs",
		secext.NewACL(secext.AllowEveryone(secext.List|secext.Write)))
	if err != nil {
		t.Fatal(err)
	}
	c.expectOK("BARRIER %d 5000", nv)
	if r.AppliedVersion() < nv {
		t.Errorf("barrier returned OK at replica version v%d, want >= v%d",
			r.AppliedVersion(), nv)
	}
}

// TestCheckCommand: the remote mediation probe answers allow and deny
// with the guard's own reason.
func TestCheckCommand(t *testing.T) {
	addr, aliceTok, eveTok := startServer(t)
	alice := dial(t, addr)
	alice.expectOK("AUTH %s", aliceTok)
	if got := alice.expectOK("CHECK /svc list"); got != "OK allowed" {
		t.Errorf("CHECK /svc list = %q", got)
	}
	if got := alice.expectOK("CHECK /svc/fs/read execute"); got != "OK allowed" {
		t.Errorf("CHECK /svc/fs/read execute = %q", got)
	}
	got := alice.expectErr("CHECK /svc administrate")
	if !strings.Contains(got, "denied") {
		t.Errorf("CHECK /svc administrate = %q", got)
	}
	alice.expectErr("CHECK /svc not-a-mode")
	alice.expectErr("CHECK /svc")

	// Unauthenticated CHECK is rejected like every mediated command.
	anon := dial(t, addr)
	anon.expectErr("CHECK /svc list")
	_ = eveTok
}

// TestSnapshotCompressionNegotiation: a protocol-3 subscriber receives
// SNAPSHOT-GZ and the payload decompresses to the exact envelope a
// protocol-2 subscriber receives in plaintext; the publisher's stats
// record both the raw and the compressed sizes.
func TestSnapshotCompressionNegotiation(t *testing.T) {
	addr, adminTok, _, _, pub := startReplServer(t)

	subscribe := func(proto int) (kind, payload string) {
		t.Helper()
		c := dial(t, addr)
		c.expectOK("HELLO %d", proto)
		c.expectOK("AUTH %s", adminTok)
		c.expectOK("SUBSCRIBE 0")
		kind, payload, _ = strings.Cut(c.readLine(), " ")
		return kind, payload
	}

	kind2, plain := subscribe(2)
	if kind2 != "SNAPSHOT" {
		t.Fatalf("proto-2 subscriber got %q, want SNAPSHOT", kind2)
	}
	kind3, gz := subscribe(3)
	if kind3 != "SNAPSHOT-GZ" {
		t.Fatalf("proto-3 subscriber got %q, want SNAPSHOT-GZ", kind3)
	}
	body, err := replica.DecompressSnapshot(gz)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != plain {
		t.Errorf("decompressed snapshot differs from the plaintext form:\n gz: %.120s...\n v2: %.120s...", body, plain)
	}
	if len(gz) >= len(plain) {
		t.Errorf("compressed payload (%d bytes) not smaller than plaintext (%d bytes)", len(gz), len(plain))
	}

	st := pub.Stats()
	if st.Snapshots != 2 || st.SnapshotsGz != 1 {
		t.Errorf("snapshots = %d (%d gz), want 2 (1 gz)", st.Snapshots, st.SnapshotsGz)
	}
	if st.SnapshotGzBytes == 0 || st.SnapshotGzBytes >= st.SnapshotBytes {
		t.Errorf("gz bytes %d vs raw bytes %d: compression not recorded", st.SnapshotGzBytes, st.SnapshotBytes)
	}
}
