// Package replica distributes the reference monitor: a primary
// secextd streams its policy epochs — the immutable, versioned,
// atomically published units PR 5 introduced — to replica mediators
// that serve access checks locally against their own epoch pointer.
//
// The paper's single central name server (§2.3) is economy of
// mechanism but also a scalability ceiling; epochs make distribution
// almost free of new trust: a replica applies each transition
// atomically into a local epoch, rebuilds the compiled read side at
// apply time, and answers checks with the same lock-free pinned-epoch
// discipline as the primary. The consistency contract is deliberate
// and asymmetric:
//
//   - Grants are bounded-stale: a replica may briefly honor policy the
//     primary has already tightened, bounded by the staleness deadline.
//   - Revocations can be made fleet-wide synchronous: the primary's
//     Publisher exposes a revocation Barrier that blocks until every
//     connected replica has acknowledged an epoch >= the revoking
//     version, so "no stale grant at/after revocation" holds across
//     the fleet, not just one process.
//   - A replica that loses its primary fails CLOSED: when nothing has
//     been heard for the staleness deadline it publishes an epoch whose
//     guard stack is a single unconditional deny, and restores the
//     replicated stack only when the stream resumes.
//
// There is no consensus and no failover: a single primary owns all
// writes; replicas are read-only mediators.
//
// This package speaks the wire format (internal/names' epoch codec
// wrapped in the line protocol's SNAPSHOT/DELTA/ACK messages) from
// both ends but never imports internal/remote — remote imports this
// package to serve the primary side.
package replica

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"fmt"
	"io"

	"secext/internal/monitor"
	"secext/internal/monitor/dacguard"
	"secext/internal/monitor/macguard"
	"secext/internal/names"
)

// Protocol versions. Version 1 is the pre-replication line protocol;
// version 2 adds HELLO/SUBSCRIBE/SNAPSHOT/DELTA/ACK/BARRIER/REPLICAS;
// version 3 compresses the bootstrap snapshot: a subscriber that
// negotiated >= 3 receives SNAPSHOT-GZ (base64 of the gzipped JSON
// envelope) instead of SNAPSHOT. A server negotiates min(client,
// ProtoVersion) and rejects clients below MinProto with a clean error
// instead of a parse failure; version-2 peers keep getting plaintext
// snapshots, so mixed fleets upgrade one process at a time.
const (
	ProtoVersion = 3
	MinProto     = 1
)

// CompressSnapshot encodes a snapshot body for the SNAPSHOT-GZ message:
// gzip, then base64 so the payload stays a single protocol line. The
// JSON envelope is dominated by repeated key names and path prefixes,
// so a million-node snapshot typically shrinks several-fold.
func CompressSnapshot(body []byte) (string, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(body); err != nil {
		return "", fmt.Errorf("replica: compressing snapshot: %w", err)
	}
	if err := zw.Close(); err != nil {
		return "", fmt.Errorf("replica: compressing snapshot: %w", err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}

// DecompressSnapshot decodes a SNAPSHOT-GZ payload back to the JSON
// envelope.
func DecompressSnapshot(s string) ([]byte, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("replica: decoding snapshot: %w", err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("replica: decompressing snapshot: %w", err)
	}
	body, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("replica: decompressing snapshot: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("replica: decompressing snapshot: %w", err)
	}
	return body, nil
}

// SnapshotEnvelope is the payload of a SNAPSHOT message: the full
// epoch plus the primary's token-signing secret, so tokens the primary
// issued authenticate against the replica too. The secret rides the
// replication envelope, not the names codec — it is a transport
// credential, not protection state.
type SnapshotEnvelope struct {
	Epoch  *names.EpochWire `json:"epoch"`
	Secret string           `json:"secret"`
}

// EncodeSecret renders a token secret for the envelope.
func EncodeSecret(secret []byte) string {
	return base64.StdEncoding.EncodeToString(secret)
}

// DecodeSecret parses an envelope secret.
func DecodeSecret(s string) ([]byte, error) {
	return base64.StdEncoding.DecodeString(s)
}

// staleGuard is the fail-closed stack: one pure guard that denies
// everything. A replica whose staleness deadline passed publishes an
// epoch carrying only this guard — the epoch transition kills every
// cached verdict, and pure denial is safely cacheable.
type staleGuard struct{}

func (staleGuard) Name() string { return "stale-replica" }

func (staleGuard) Check(monitor.Request) monitor.Verdict {
	return monitor.Deny("stale-replica", "replica: staleness deadline exceeded, failing closed")
}

// StaleStack returns the fail-closed guard stack.
func StaleStack() *monitor.Stack {
	return monitor.NewPipeline(staleGuard{}).Current()
}

// BuildStack rebuilds a guard stack from its replicated descriptor
// (ordered guard names). Only guards with registered pure constructors
// can be rebuilt; a stack naming any other guard fails the
// subscription — the replica then refuses to serve rather than run a
// weaker stack than the primary. The rebuilt default [dac, mac] stack
// is type-identical to the primary's, so the compiled-epoch fast path
// stays licensed on replicas.
func BuildStack(guardNames []string) (*monitor.Stack, error) {
	guards := make([]monitor.Guard, 0, len(guardNames))
	for _, name := range guardNames {
		switch name {
		case "dac":
			guards = append(guards, dacguard.New())
		case "mac":
			guards = append(guards, macguard.New())
		case "stale-replica":
			guards = append(guards, staleGuard{})
		default:
			return nil, fmt.Errorf("replica: cannot rebuild guard %q: no replicable constructor", name)
		}
	}
	return monitor.NewPipeline(guards...).Current(), nil
}
