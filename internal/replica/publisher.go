package replica

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"secext/internal/core"
	"secext/internal/names"
	"secext/internal/telemetry"
)

// Msg is one stream message queued for a peer: an encoded DELTA
// payload and the primary epoch version it carries the peer to.
type Msg struct {
	Version uint64
	Payload []byte
}

// Peer is one subscribed replica as the primary sees it. The remote
// layer owns the connection; the publisher owns the delta queue and
// the acknowledgment state.
type Peer struct {
	name string
	// base is the primary epoch version of the snapshot the peer
	// bootstrapped from; deltas at or below it are filtered (the
	// snapshot already contains them).
	base uint64
	// ch carries encoded deltas to the connection's writer goroutine.
	// Only the publisher's fan-out goroutine sends and closes; a close
	// means the peer was dropped (overflow or publisher shutdown).
	ch chan Msg

	acked         atomic.Uint64
	deltas        atomic.Uint64
	deltaBytes    atomic.Uint64
	snapshotBytes uint64
}

// Name returns the peer's display name (unique per publisher).
func (p *Peer) Name() string { return p.name }

// Ch returns the peer's delta stream; the connection's writer
// goroutine ranges over it until it closes.
func (p *Peer) Ch() <-chan Msg { return p.ch }

// Acked returns the last primary epoch version the peer acknowledged.
func (p *Peer) Acked() uint64 { return p.acked.Load() }

// transition is one queued epoch publication awaiting diff + fan-out.
type transition struct {
	prev, next *names.Epoch
}

// peerChCap bounds each peer's delta queue. A peer that falls this far
// behind the primary's publication rate is dropped — it reconnects and
// re-bootstraps from a fresh snapshot (or fails closed); an unbounded
// queue would instead let one slow replica consume the primary's
// memory.
const peerChCap = 1024

// Publisher is the primary-side replication engine: it observes every
// epoch publication through the name server's transition hook, derives
// the wire delta on its own goroutine, and fans the encoded message
// out to every subscribed peer. It also implements the revocation
// Barrier and the telemetry snapshot.
type Publisher struct {
	sys *core.System

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []transition
	peers  map[string]*Peer
	seq    int
	closed bool

	snapshots       atomic.Uint64
	snapshotsGz     atomic.Uint64
	deltas          atomic.Uint64
	snapshotBytes   atomic.Uint64
	snapshotGzBytes atomic.Uint64
	deltaBytes      atomic.Uint64
	barrierTimeouts atomic.Uint64
	barrierWait     telemetry.Histogram
}

// NewPublisher wires a publisher into the system's name server: from
// here on every epoch publication is queued for replication. The hook
// only appends to the queue (it runs under the name server's writer
// mutex); diffing and encoding happen on the publisher's goroutine.
func NewPublisher(sys *core.System) *Publisher {
	p := &Publisher{sys: sys, peers: make(map[string]*Peer)}
	p.cond = sync.NewCond(&p.mu)
	sys.Names().SetTransitionHook(func(prev, next *names.Epoch) {
		p.mu.Lock()
		if !p.closed {
			p.queue = append(p.queue, transition{prev, next})
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	})
	go p.run()
	return p
}

// Close detaches the publisher from the name server and drops every
// peer. Queued transitions are discarded.
func (p *Publisher) Close() {
	p.sys.Names().SetTransitionHook(nil)
	p.mu.Lock()
	p.closed = true
	p.queue = nil
	peers := make([]*Peer, 0, len(p.peers))
	for _, peer := range p.peers {
		peers = append(peers, peer)
	}
	p.peers = make(map[string]*Peer)
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, peer := range peers {
		close(peer.ch)
	}
}

// Subscribe registers a new peer and returns it together with the
// encoded SNAPSHOT envelope the connection must send first. The
// snapshot is captured under the publisher's mutex, so no published
// delta can fall between the snapshot version and the peer's stream:
// every transition enqueued after this point either is contained in
// the snapshot (version <= base, filtered) or will be delivered.
func (p *Publisher) Subscribe(label string) (*Peer, []byte, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, nil, fmt.Errorf("replica: publisher closed")
	}
	ep := p.sys.Names().Current()
	p.seq++
	name := fmt.Sprintf("%s#%d", label, p.seq)
	peer := &Peer{name: name, base: ep.Version(), ch: make(chan Msg, peerChCap)}
	peer.acked.Store(ep.Version())
	p.peers[name] = peer
	p.mu.Unlock()

	wire, err := ep.WireSnapshot()
	if err != nil {
		p.Remove(peer)
		return nil, nil, err
	}
	env := SnapshotEnvelope{Epoch: wire, Secret: EncodeSecret(p.sys.Registry().TokenSecret())}
	body, err := json.Marshal(env)
	if err != nil {
		p.Remove(peer)
		return nil, nil, err
	}
	p.snapshots.Add(1)
	p.snapshotBytes.Add(uint64(len(body)))
	peer.snapshotBytes = uint64(len(body))
	return peer, body, nil
}

// CompressSnapshotFor gzips a snapshot body for a protocol >= 3 peer
// and records the compressed wire size next to the raw size Subscribe
// already counted — the two counters together are the compression
// ratio the telemetry exports. The peer's own snapshot stat switches
// to the wire size: it reports what the link actually carried.
func (p *Publisher) CompressSnapshotFor(peer *Peer, raw []byte) (string, error) {
	gz, err := CompressSnapshot(raw)
	if err != nil {
		return "", err
	}
	p.snapshotsGz.Add(1)
	p.snapshotGzBytes.Add(uint64(len(gz)))
	peer.snapshotBytes = uint64(len(gz))
	return gz, nil
}

// Ack records that the peer applied every primary epoch up to v, and
// wakes any barrier waiting on it. Acks are monotonic; a stale ack is
// ignored.
func (p *Publisher) Ack(peer *Peer, v uint64) {
	for {
		cur := peer.acked.Load()
		if v <= cur {
			return
		}
		if peer.acked.CompareAndSwap(cur, v) {
			break
		}
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Remove unregisters a peer after its connection ended. A removed peer
// no longer gates barriers — its replica is failing closed on its own
// staleness deadline, which is the disconnect half of the consistency
// contract.
func (p *Publisher) Remove(peer *Peer) {
	p.mu.Lock()
	if cur, ok := p.peers[peer.name]; ok && cur == peer {
		delete(p.peers, peer.name)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// drop removes a peer AND closes its stream: used by the fan-out when
// a peer's queue overflows. The connection's writer goroutine sees the
// close and hangs up, forcing the replica to re-bootstrap.
func (p *Publisher) drop(peer *Peer) {
	p.mu.Lock()
	cur, ok := p.peers[peer.name]
	if ok && cur == peer {
		delete(p.peers, peer.name)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	if ok && cur == peer {
		close(peer.ch)
	}
}

// run is the fan-out goroutine: pop transitions in publication order,
// derive and encode the delta once, deliver to every peer that needs
// it.
func (p *Publisher) run() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		peers := make([]*Peer, 0, len(p.peers))
		for _, peer := range p.peers {
			peers = append(peers, peer)
		}
		p.mu.Unlock()

		needed := false
		for _, peer := range peers {
			if t.next.Version() > peer.base {
				needed = true
				break
			}
		}
		if !needed {
			continue
		}
		d, err := names.DiffEpochs(t.prev, t.next)
		if err != nil {
			// A diff failure means the epoch pair does not obey the
			// append-only shard contract — nothing sound can be
			// streamed, so every affected peer is dropped to a fresh
			// snapshot rather than silently skipped.
			for _, peer := range peers {
				p.drop(peer)
			}
			continue
		}
		body, err := json.Marshal(d)
		if err != nil {
			for _, peer := range peers {
				p.drop(peer)
			}
			continue
		}
		p.deltas.Add(1)
		p.deltaBytes.Add(uint64(len(body)))
		msg := Msg{Version: d.Version, Payload: body}
		for _, peer := range peers {
			if d.Version <= peer.base {
				continue
			}
			select {
			case peer.ch <- msg:
				peer.deltas.Add(1)
				peer.deltaBytes.Add(uint64(len(body)))
			default:
				p.drop(peer)
			}
		}
	}
}

// Barrier blocks until every currently connected peer has acknowledged
// a primary epoch >= v, or the timeout passes. Peers that disconnect
// while the barrier waits stop gating it (their replicas fail closed
// on their own deadline). A satisfied barrier is the fleet-wide
// revocation guarantee: no connected replica will grant under any
// epoch older than v after Barrier returns nil.
func (p *Publisher) Barrier(v uint64, timeout time.Duration) error {
	start := time.Now()
	deadline := start.Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return fmt.Errorf("replica: publisher closed during barrier")
		}
		lagging := false
		for _, peer := range p.peers {
			if peer.acked.Load() < v {
				lagging = true
				break
			}
		}
		if !lagging {
			p.barrierWait.Observe(time.Since(start))
			return nil
		}
		if !time.Now().Before(deadline) {
			p.barrierTimeouts.Add(1)
			return fmt.Errorf("replica: barrier for epoch v%d timed out after %s", v, timeout)
		}
		p.cond.Wait()
	}
}

// Peers returns the currently connected peers.
func (p *Publisher) Peers() []*Peer {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Peer, 0, len(p.peers))
	for _, peer := range p.peers {
		out = append(out, peer)
	}
	return out
}

// Stats snapshots the publisher for telemetry: per-peer lag against
// the current primary version, transfer volume by message kind, and
// the barrier-wait distribution.
func (p *Publisher) Stats() telemetry.ReplicationStats {
	cur := p.sys.Names().Version()
	st := telemetry.ReplicationStats{
		PrimaryVersion:  cur,
		Snapshots:       p.snapshots.Load(),
		SnapshotsGz:     p.snapshotsGz.Load(),
		Deltas:          p.deltas.Load(),
		SnapshotBytes:   p.snapshotBytes.Load(),
		SnapshotGzBytes: p.snapshotGzBytes.Load(),
		DeltaBytes:      p.deltaBytes.Load(),
		BarrierTimeouts: p.barrierTimeouts.Load(),
		BarrierWait:     p.barrierWait.Snapshot(),
	}
	for _, peer := range p.Peers() {
		acked := peer.acked.Load()
		lag := uint64(0)
		if cur > acked {
			lag = cur - acked
		}
		st.Peers = append(st.Peers, telemetry.ReplicaPeerStat{
			Name:          peer.name,
			Acked:         acked,
			Lag:           lag,
			SnapshotBytes: peer.snapshotBytes,
			DeltaBytes:    peer.deltaBytes.Load(),
			Deltas:        peer.deltas.Load(),
		})
	}
	return st
}
