package replica

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"secext/internal/core"
	"secext/internal/monitor"
	"secext/internal/names"
	"secext/internal/telemetry"
)

// Options configure Connect.
type Options struct {
	// Addr is the primary's line-protocol address.
	Addr string
	// Token authenticates the subscription; the principal it names must
	// hold administrate on "/" at the primary (replication hands out the
	// entire policy, so only an administrator-equivalent may subscribe).
	Token string
	// StaleAfter is the staleness deadline: when nothing has been heard
	// from the primary for this long, the replica publishes the
	// fail-closed deny-all stack. Default 3s.
	StaleAfter time.Duration
	// DialTimeout bounds the TCP connect (default 5s).
	DialTimeout time.Duration
	// Telemetry configures the replica system's observability.
	Telemetry telemetry.Options
}

// Replica is one replica mediator: a full core.System whose policy is
// driven by a primary's epoch stream instead of local mutations. Reads
// (CheckData, List, Explain, telemetry) work exactly as on the
// primary; writes are not supported — the primary owns them.
type Replica struct {
	sys  *core.System
	conn net.Conn
	opts Options

	// applied is the last primary epoch version fully applied locally.
	applied atomic.Uint64
	// lastHeard is the unix-nano time of the last message (delta or
	// ping) from the primary; the watchdog compares it against the
	// staleness deadline.
	lastHeard atomic.Int64
	// stale reports whether the fail-closed stack is currently
	// installed.
	stale atomic.Bool

	// mu guards liveStack (the stack the stream last replicated) and
	// write access to the connection (reader and watchdog both send).
	mu        sync.Mutex
	liveStack *monitor.Stack

	quit chan struct{}
	done chan struct{}

	// readErr records why the stream ended (nil until it does).
	readErr atomic.Pointer[error]
}

// Connect dials the primary, authenticates, bootstraps a full local
// system from the SNAPSHOT, and starts the stream reader and the
// staleness watchdog. On return the replica serves checks at the
// primary epoch version carried by the snapshot.
func Connect(opts Options) (*Replica, error) {
	if opts.StaleAfter <= 0 {
		opts.StaleAfter = 3 * time.Second
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", opts.Addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("replica: dial %s: %w", opts.Addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 64*1024*1024)

	fail := func(err error) (*Replica, error) {
		conn.Close()
		return nil, err
	}
	expect := func(what string) (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", fmt.Errorf("replica: reading %s: %w", what, err)
			}
			return "", fmt.Errorf("replica: connection closed while reading %s", what)
		}
		line := sc.Text()
		if !strings.HasPrefix(line, "OK") {
			return "", fmt.Errorf("replica: %s: primary said %q", what, line)
		}
		return line, nil
	}

	if _, err := expect("greeting"); err != nil {
		return fail(err)
	}
	fmt.Fprintf(conn, "HELLO %d\n", ProtoVersion)
	line, err := expect("version negotiation")
	if err != nil {
		return fail(err)
	}
	var proto int
	if _, err := fmt.Sscanf(line, "OK proto %d", &proto); err != nil || proto < 2 {
		return fail(fmt.Errorf("replica: primary negotiated %q; replication needs protocol >= 2", line))
	}
	fmt.Fprintf(conn, "AUTH %s\n", opts.Token)
	if _, err := expect("authentication"); err != nil {
		return fail(err)
	}
	fmt.Fprintf(conn, "SUBSCRIBE 0\n")
	if _, err := expect("subscription"); err != nil {
		return fail(err)
	}
	if !sc.Scan() {
		return fail(fmt.Errorf("replica: connection closed before snapshot"))
	}
	kind, payload, _ := strings.Cut(sc.Text(), " ")
	var body []byte
	switch kind {
	case "SNAPSHOT":
		body = []byte(payload)
	case "SNAPSHOT-GZ":
		// Protocol >= 3 primaries compress the bootstrap snapshot; a
		// protocol-2 primary (which would have negotiated our HELLO
		// down) still sends plaintext, handled above.
		body, err = DecompressSnapshot(payload)
		if err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("replica: expected SNAPSHOT, got %q", kind))
	}
	var env SnapshotEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		return fail(fmt.Errorf("replica: decoding snapshot: %w", err))
	}
	r := &Replica{
		conn: conn,
		opts: opts,
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	if err := r.bootstrap(&env); err != nil {
		return fail(err)
	}
	r.applied.Store(env.Epoch.Version)
	r.lastHeard.Store(time.Now().UnixNano())
	fmt.Fprintf(conn, "ACK %d\n", env.Epoch.Version)
	go r.read(sc)
	go r.watchdog()
	return r, nil
}

// bootstrap builds the local system from a snapshot: lattice universe,
// token secret, principals (in dense-ID order, so local IDs equal the
// primary's), groups, and finally the tree and guard stack in one
// atomic publication.
func (r *Replica) bootstrap(env *SnapshotEnvelope) error {
	if env.Epoch == nil || env.Epoch.Version == 0 {
		return fmt.Errorf("replica: snapshot carries no epoch")
	}
	if len(env.Epoch.Levels) == 0 {
		return fmt.Errorf("replica: snapshot carries no lattice levels")
	}
	sys, err := core.NewSystem(core.Options{
		Levels:     env.Epoch.Levels,
		Categories: env.Epoch.Categories,
		Telemetry:  r.opts.Telemetry,
	})
	if err != nil {
		return fmt.Errorf("replica: building local system: %w", err)
	}
	secret, err := DecodeSecret(env.Secret)
	if err != nil {
		return fmt.Errorf("replica: decoding token secret: %w", err)
	}
	if err := sys.Registry().SetTokenSecret(secret); err != nil {
		return err
	}
	// Principals arrive in dense-ID order; replaying them in sequence
	// assigns identical local IDs, so the compiled bitsets the replica
	// builds index identically to the primary's.
	for _, pw := range env.Epoch.Principals {
		if _, err := sys.AddPrincipal(pw.Name, pw.Class); err != nil {
			return fmt.Errorf("replica: replaying principal %s: %w", pw.Name, err)
		}
	}
	reg := sys.Registry()
	for _, gw := range env.Epoch.Groups {
		if err := reg.AddGroup(gw.Name); err != nil {
			return fmt.Errorf("replica: replaying group %s: %w", gw.Name, err)
		}
	}
	for _, gw := range env.Epoch.Groups {
		for _, m := range gw.Members {
			if err := reg.AddMember(gw.Name, strings.TrimPrefix(m, "@")); err != nil {
				return fmt.Errorf("replica: replaying membership %s -> %s: %w", m, gw.Name, err)
			}
		}
	}
	stack, err := BuildStack(env.Epoch.Stack)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.liveStack = stack
	r.mu.Unlock()
	if _, err := sys.Names().ApplyReplicated(names.ReplicaApply{
		PrimaryVersion: env.Epoch.Version,
		Traversal:      env.Epoch.Traversal,
		Full:           env.Epoch.Nodes,
		Stack:          stack,
	}); err != nil {
		return fmt.Errorf("replica: installing snapshot tree: %w", err)
	}
	r.sys = sys
	return nil
}

// read is the stream reader: apply each DELTA atomically, acknowledge
// it, answer PINGs. When the stream ends the reader just exits — the
// watchdog then fails the replica closed once the staleness deadline
// passes, which is the bounded-stale half of the consistency contract
// (a freshly severed replica may keep granting until the deadline, and
// never after).
func (r *Replica) read(sc *bufio.Scanner) {
	defer close(r.done)
	for sc.Scan() {
		kind, payload, _ := strings.Cut(sc.Text(), " ")
		switch kind {
		case "DELTA":
			var d names.EpochDelta
			if err := json.Unmarshal([]byte(payload), &d); err != nil {
				r.fail(fmt.Errorf("replica: decoding delta: %w", err))
				return
			}
			if err := r.applyDelta(&d); err != nil {
				r.fail(fmt.Errorf("replica: applying delta v%d: %w", d.Version, err))
				return
			}
			r.heard()
			r.send("ACK %d", d.Version)
		case "PING":
			r.heard()
			r.restoreIfStale()
			r.send("ACK %d", r.applied.Load())
		case "ERR":
			r.fail(fmt.Errorf("replica: primary error: %s", payload))
			return
		default:
			// Unknown stream messages are ignored: a newer primary may
			// add informational messages without breaking old replicas.
		}
	}
	if err := sc.Err(); err != nil {
		r.fail(err)
	}
}

// applyDelta replays one epoch delta. Order matters for safety: the
// append-only shards (lattice, registry) replay first through the
// ordinary entry points — each lands in a consistent local epoch, and
// registry revocations take effect here, BEFORE the ack — then the
// tree patch and any stack change land in one atomic publication
// stamped with the primary version.
func (r *Replica) applyDelta(d *names.EpochDelta) error {
	sys := r.sys
	for _, lv := range d.Levels {
		if _, err := sys.Lattice().DefineLevel(lv); err != nil {
			return err
		}
	}
	for _, c := range d.Categories {
		if _, err := sys.Lattice().DefineCategory(c); err != nil {
			return err
		}
	}
	for _, pw := range d.Principals {
		if _, err := sys.AddPrincipal(pw.Name, pw.Class); err != nil {
			return err
		}
	}
	reg := sys.Registry()
	for _, gw := range d.Groups {
		if !reg.Freeze().HasGroup(gw.Name) {
			if err := reg.AddGroup(gw.Name); err != nil {
				return err
			}
		}
		cur, err := reg.Members(gw.Name)
		if err != nil {
			return err
		}
		want := make(map[string]bool, len(gw.Members))
		for _, m := range gw.Members {
			want[m] = true
		}
		have := make(map[string]bool, len(cur))
		for _, m := range cur {
			have[m] = true
		}
		// Removals first: a delta that both revokes and grants must
		// never pass through a state more permissive than either end.
		for _, m := range cur {
			if !want[m] {
				if err := reg.RemoveMember(gw.Name, strings.TrimPrefix(m, "@")); err != nil {
					return err
				}
			}
		}
		for _, m := range gw.Members {
			if !have[m] {
				if err := reg.AddMember(gw.Name, strings.TrimPrefix(m, "@")); err != nil {
					return err
				}
			}
		}
	}
	var stack *monitor.Stack
	if d.Stack != nil {
		s, err := BuildStack(d.Stack)
		if err != nil {
			return err
		}
		stack = s
		r.mu.Lock()
		r.liveStack = s
		r.mu.Unlock()
	}
	// Leaving staleness: the delta's publication must reinstall the
	// live stack even when the primary's stack did not change.
	if stack == nil && r.stale.Load() {
		r.mu.Lock()
		stack = r.liveStack
		r.mu.Unlock()
	}
	if _, err := sys.Names().ApplyReplicated(names.ReplicaApply{
		PrimaryVersion: d.Version,
		Traversal:      d.Traversal,
		Upserts:        d.Upserts,
		Deletes:        d.Deletes,
		Stack:          stack,
	}); err != nil {
		return err
	}
	r.applied.Store(d.Version)
	r.stale.Store(false)
	return nil
}

// watchdog enforces the staleness deadline: when nothing has been
// heard from the primary for StaleAfter, publish the fail-closed
// deny-all stack. The publication is an ordinary epoch transition, so
// every cached grant dies with it.
func (r *Replica) watchdog() {
	tick := r.opts.StaleAfter / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-t.C:
			if r.stale.Load() {
				continue
			}
			last := time.Unix(0, r.lastHeard.Load())
			if time.Since(last) < r.opts.StaleAfter {
				continue
			}
			// Mark stale BEFORE publishing: a concurrent delta that
			// applies after this flag observes it and reinstalls the
			// live stack with its own later publication.
			r.stale.Store(true)
			cur := r.sys.Names().Current()
			applied := r.applied.Load()
			if _, err := r.sys.Names().ApplyReplicated(names.ReplicaApply{
				PrimaryVersion: applied,
				Kind:           "replica-stale",
				Traversal:      cur.TraversalChecks(),
				Stack:          StaleStack(),
			}); err != nil {
				// Publishing a deny-all stack cannot structurally fail;
				// if it somehow does, stay marked stale and retry on
				// the next tick.
				r.stale.Store(false)
			}
		}
	}
}

// restoreIfStale reinstalls the replicated stack after a stale period
// ended with a PING (stream alive, no new epochs).
func (r *Replica) restoreIfStale() {
	if !r.stale.Load() {
		return
	}
	r.mu.Lock()
	stack := r.liveStack
	r.mu.Unlock()
	cur := r.sys.Names().Current()
	if _, err := r.sys.Names().ApplyReplicated(names.ReplicaApply{
		PrimaryVersion: r.applied.Load(),
		Traversal:      cur.TraversalChecks(),
		Stack:          stack,
	}); err == nil {
		r.stale.Store(false)
	}
}

// heard stamps the liveness clock.
func (r *Replica) heard() { r.lastHeard.Store(time.Now().UnixNano()) }

// send writes one protocol line; reader and watchdog share the
// connection, so writes serialize on r.mu.
func (r *Replica) send(format string, args ...any) {
	r.mu.Lock()
	fmt.Fprintf(r.conn, format+"\n", args...)
	r.mu.Unlock()
}

// fail records the stream error. The replica keeps serving under the
// bounded-stale contract until the watchdog's deadline fails it
// closed.
func (r *Replica) fail(err error) {
	r.readErr.CompareAndSwap(nil, &err)
}

// System returns the replica's local reference monitor: checks,
// explain, telemetry, and the journal all work against it.
func (r *Replica) System() *core.System { return r.sys }

// AppliedVersion returns the last primary epoch version fully applied.
func (r *Replica) AppliedVersion() uint64 { return r.applied.Load() }

// Stale reports whether the fail-closed stack is currently installed.
func (r *Replica) Stale() bool { return r.stale.Load() }

// Err returns the stream error, nil while the stream is healthy.
func (r *Replica) Err() error {
	if e := r.readErr.Load(); e != nil {
		return *e
	}
	return nil
}

// Close severs the stream and stops the watchdog. The replica's system
// remains queryable (tests inspect it); it no longer updates.
func (r *Replica) Close() {
	select {
	case <-r.quit:
	default:
		close(r.quit)
	}
	r.conn.Close()
	<-r.done
}
