package replica_test

// End-to-end replication tests over real loopback TCP: a primary
// secext world serving the line protocol, replicas connecting through
// replica.Connect, policy flowing as SNAPSHOT + DELTA messages. These
// are the consistency-contract proofs at the package level; the
// fleet-wide attack test lives in the repository root's attack suite.

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"secext"
	"secext/internal/remote"
	"secext/internal/replica"
)

// primary is one replication-enabled secext daemon under test.
type primary struct {
	w    *secext.World
	srv  *remote.Server
	pub  *replica.Publisher
	l    net.Listener
	addr string

	replicatorTok string
	aliceTok      string
	eveTok        string
}

func startPrimary(t *testing.T, ping time.Duration) *primary {
	t.Helper()
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := &primary{w: w}
	for _, spec := range []struct{ name, class string }{
		{"alice", "organization:{dept-1}"},
		{"eve", "others"},
		{"replicator", "others"},
	} {
		if _, err := w.Sys.AddPrincipal(spec.name, spec.class); err != nil {
			t.Fatal(err)
		}
	}
	rootACL, err := w.Sys.Names().ACLOf("/")
	if err != nil {
		t.Fatal(err)
	}
	rootACL.Add(secext.Allow("replicator", secext.Administrate))
	if err := w.Sys.Names().SetACLUnchecked("/", rootACL); err != nil {
		t.Fatal(err)
	}
	issue := func(name string) string {
		tok, err := w.Sys.Registry().IssueToken(name)
		if err != nil {
			t.Fatal(err)
		}
		return tok
	}
	p.replicatorTok, p.aliceTok, p.eveTok = issue("replicator"), issue("alice"), issue("eve")

	ctx, err := w.Sys.NewContext("alice")
	if err != nil {
		t.Fatal(err)
	}
	open := secext.NewACL(secext.AllowEveryone(secext.Read | secext.Write | secext.WriteAppend))
	if err := w.FS.Create(ctx, "/fs/f", open, ctx.Class()); err != nil {
		t.Fatal(err)
	}

	p.srv = remote.NewServer(w.Sys)
	p.srv.PingInterval = ping
	p.pub = replica.NewPublisher(w.Sys)
	p.srv.SetPublisher(p.pub)
	p.l, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.addr = p.l.Addr().String()
	go p.srv.Serve(p.l)
	t.Cleanup(func() {
		p.pub.Close()
		p.srv.Close()
		p.l.Close()
	})
	return p
}

func (p *primary) connect(t *testing.T, staleAfter time.Duration) *replica.Replica {
	t.Helper()
	r, err := replica.Connect(replica.Options{
		Addr:       p.addr,
		Token:      p.replicatorTok,
		StaleAfter: staleAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReplicaBootstrapAndPropagation: a replica bootstraps to the
// primary's policy, answers the same verdicts with the primary's own
// tokens, and tracks subsequent mutations — including a revocation,
// which must land (deny) on the replica after catch-up.
func TestReplicaBootstrapAndPropagation(t *testing.T) {
	p := startPrimary(t, 50*time.Millisecond)
	r := p.connect(t, 5*time.Second)

	if got, want := r.AppliedVersion(), p.w.Sys.Names().Version(); got != want {
		t.Fatalf("bootstrap applied v%d, primary at v%d", got, want)
	}
	// Primary-issued tokens authenticate on the replica (the signing
	// secret replicated), and the verdict matches the primary's.
	rctx, err := r.System().NewContextFromToken(p.aliceTok)
	if err != nil {
		t.Fatalf("primary token rejected by replica: %v", err)
	}
	if _, err := r.System().CheckData(rctx, "/fs/f", secext.Read); err != nil {
		t.Fatalf("replica denies what primary allows: %v", err)
	}
	// The replica's journal records the bootstrap as a replicated apply.
	recs := r.System().Names().Journal(1)
	if len(recs) == 0 || recs[0].Kind != "replica" {
		t.Fatalf("replica journal missing kind=replica bootstrap record: %+v", recs)
	}

	// Revoke on the primary: everyone loses read on /fs/f.
	closed := secext.NewACL(secext.AllowEveryone(secext.List))
	v, err := p.w.Sys.Names().SetACLUncheckedAt("/fs/f", closed)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "replica to apply the revocation", func() bool {
		return r.AppliedVersion() >= v
	})
	if _, err := r.System().CheckData(rctx, "/fs/f", secext.Read); err == nil {
		t.Fatal("replica still grants after applying the revoking epoch")
	}
}

// TestRevocationBarrier: Barrier(v) returns only after every connected
// replica acked v, and at that point no replica grants under the
// revoked policy.
func TestRevocationBarrier(t *testing.T) {
	p := startPrimary(t, 50*time.Millisecond)
	r1 := p.connect(t, 10*time.Second)
	r2 := p.connect(t, 10*time.Second)

	ctxs := make([]*secext.Context, 0, 2)
	for _, r := range []*replica.Replica{r1, r2} {
		ctx, err := r.System().NewContextFromToken(p.aliceTok)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.System().CheckData(ctx, "/fs/f", secext.Read); err != nil {
			t.Fatalf("pre-revocation check denied: %v", err)
		}
		ctxs = append(ctxs, ctx)
	}

	closed := secext.NewACL(secext.AllowEveryone(secext.List))
	v, err := p.w.Sys.Names().SetACLUncheckedAt("/fs/f", closed)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.pub.Barrier(v, 10*time.Second); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	// The barrier is the guarantee: no re-check, no sleep — the revoked
	// grant must already be dead on every replica.
	for i, r := range []*replica.Replica{r1, r2} {
		if _, err := r.System().CheckData(ctxs[i], "/fs/f", secext.Read); err == nil {
			t.Fatalf("replica %d grants after the revocation barrier returned", i)
		}
	}
}

// TestBarrierTimeout: a barrier with no acking peers reports a timeout
// instead of hanging.
func TestBarrierTimeout(t *testing.T) {
	p := startPrimary(t, time.Hour) // pings off: the peer never acks
	// Register a raw peer that never acknowledges: subscribe directly
	// at the publisher without a connection draining the channel.
	peer, _, err := p.pub.Subscribe("dead")
	if err != nil {
		t.Fatal(err)
	}
	defer p.pub.Remove(peer)
	v, err := p.w.Sys.Names().SetACLUncheckedAt("/fs/f",
		secext.NewACL(secext.AllowEveryone(secext.List)))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := p.pub.Barrier(v, 50*time.Millisecond); err == nil {
		t.Fatal("barrier satisfied with a dead peer")
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("barrier returned after %s, before the timeout", elapsed)
	}
	if st := p.pub.Stats(); st.BarrierTimeouts == 0 {
		t.Fatal("barrier timeout not counted")
	}
}

// TestDisconnectedPeerStopsGatingBarrier: a peer that disconnects
// while behind stops gating the barrier — its replica is failing
// closed on its own deadline, which is the other half of the
// contract.
func TestDisconnectedPeerStopsGatingBarrier(t *testing.T) {
	p := startPrimary(t, 50*time.Millisecond)
	r := p.connect(t, 10*time.Second)
	peer, _, err := p.pub.Subscribe("dead")
	if err != nil {
		t.Fatal(err)
	}
	v, err := p.w.Sys.Names().SetACLUncheckedAt("/fs/f",
		secext.NewACL(secext.AllowEveryone(secext.List)))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.pub.Barrier(v, 10*time.Second) }()
	time.Sleep(20 * time.Millisecond)
	p.pub.Remove(peer) // connection died
	if err := <-done; err != nil {
		t.Fatalf("barrier still gated by the removed peer: %v", err)
	}
	waitFor(t, 5*time.Second, "live replica catch-up", func() bool {
		return r.AppliedVersion() >= v
	})
}

// TestStaleReplicaFailsClosed: severing the stream flips the replica
// to the deny-all stack after the staleness deadline — every check
// denies, cached verdicts included, and the journal records the
// fail-closed publication.
func TestStaleReplicaFailsClosed(t *testing.T) {
	p := startPrimary(t, 20*time.Millisecond)
	r := p.connect(t, 150*time.Millisecond)
	rctx, err := r.System().NewContextFromToken(p.aliceTok)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the decision cache with a grant — staleness must kill it.
	if _, err := r.System().CheckData(rctx, "/fs/f", secext.Read); err != nil {
		t.Fatal(err)
	}
	// Sever every connection (listener down, conns closed, publisher
	// detached): the replica hears nothing from here on.
	p.pub.Close()
	p.srv.Close()
	p.l.Close()

	waitFor(t, 5*time.Second, "staleness deadline", r.Stale)
	if _, err := r.System().CheckData(rctx, "/fs/f", secext.Read); err == nil {
		t.Fatal("stale replica still grants a previously cached verdict")
	}
	if !strings.Contains(r.System().Names().Current().Stack().Guards()[0], "stale-replica") {
		t.Fatalf("stale replica stack = %v, want the stale-replica guard",
			r.System().Names().Current().Stack().Guards())
	}
	recs := r.System().Names().Journal(1)
	if len(recs) == 0 || recs[0].Kind != "replica-stale" {
		t.Fatalf("journal missing the replica-stale record: %+v", recs)
	}
}

// TestStaleReplicaRestoresOnPing: when the stream is alive but idle
// longer than the deadline (pings slower than StaleAfter), the replica
// fails closed and then restores the replicated stack on the next
// PING — bounded staleness, not permanent death.
func TestStaleReplicaRestoresOnPing(t *testing.T) {
	p := startPrimary(t, 400*time.Millisecond)
	r := p.connect(t, 100*time.Millisecond)
	rctx, err := r.System().NewContextFromToken(p.aliceTok)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "stale flip between pings", r.Stale)
	// The replica oscillates: stale 100ms after each ping, restored on
	// the next. Wait for a granted check rather than a bare !Stale() —
	// the next stale window must not race the verdict.
	waitFor(t, 5*time.Second, "restored grant after a ping", func() bool {
		_, err := r.System().CheckData(rctx, "/fs/f", secext.Read)
		return err == nil
	})
	// And the journal (newest first) shows the round trip: a restore
	// publication newer than a replica-stale one.
	var sawNewerRestore, sawStaleRecord bool
	for _, rec := range r.System().Names().Journal(0) {
		switch rec.Kind {
		case "replica":
			if !sawStaleRecord {
				sawNewerRestore = true
			}
		case "replica-stale":
			sawStaleRecord = true
		}
	}
	if !sawStaleRecord || !sawNewerRestore {
		t.Fatalf("journal missing the stale/restore round trip (stale=%v restore=%v)",
			sawStaleRecord, sawNewerRestore)
	}
}

// TestSubscribeRequiresAdministrate: a token without administrate on
// "/" cannot subscribe — replication hands out the whole policy, so
// the ordinary ACL decides who may have it.
func TestSubscribeRequiresAdministrate(t *testing.T) {
	p := startPrimary(t, 50*time.Millisecond)
	_, err := replica.Connect(replica.Options{Addr: p.addr, Token: p.eveTok})
	if err == nil {
		t.Fatal("subscription succeeded without administrate on /")
	}
	if !strings.Contains(err.Error(), "denied") {
		t.Fatalf("want a denial, got: %v", err)
	}
	// And a garbage token fails authentication outright.
	_, err = replica.Connect(replica.Options{Addr: p.addr, Token: "eve.forged"})
	if err == nil || !strings.Contains(err.Error(), "authentication") {
		t.Fatalf("forged token: %v", err)
	}
}

// TestReplicaLagTelemetry: the publisher's stats expose per-peer acks
// and transfer volume.
func TestReplicaLagTelemetry(t *testing.T) {
	p := startPrimary(t, 50*time.Millisecond)
	r := p.connect(t, 10*time.Second)
	v, err := p.w.Sys.Names().SetACLUncheckedAt("/fs/f",
		secext.NewACL(secext.AllowEveryone(secext.Read)))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.pub.Barrier(v, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	st := p.pub.Stats()
	if len(st.Peers) != 1 {
		t.Fatalf("stats list %d peers, want 1", len(st.Peers))
	}
	peer := st.Peers[0]
	if peer.Acked < v || peer.Lag != 0 {
		t.Fatalf("peer acked v%d lag %d after barrier on v%d", peer.Acked, peer.Lag, v)
	}
	if st.Snapshots != 1 || st.SnapshotBytes == 0 {
		t.Fatalf("snapshot accounting: %d msgs, %d bytes", st.Snapshots, st.SnapshotBytes)
	}
	if st.Deltas == 0 || st.DeltaBytes == 0 {
		t.Fatalf("delta accounting: %d msgs, %d bytes", st.Deltas, st.DeltaBytes)
	}
	if st.BarrierWait.Count == 0 {
		t.Fatal("barrier wait not observed in the histogram")
	}
	_ = r
}

// TestBuildStackRejectsUnknownGuard: a stack descriptor naming a guard
// with no replicable constructor fails instead of silently weakening
// the replica's policy.
func TestBuildStackRejectsUnknownGuard(t *testing.T) {
	if _, err := replica.BuildStack([]string{"dac", "quota"}); err == nil {
		t.Fatal("unknown guard rebuilt silently")
	}
	s, err := replica.BuildStack([]string{"dac", "mac"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Guards(); len(got) != 2 || got[0] != "dac" || got[1] != "mac" {
		t.Fatalf("rebuilt stack %v", got)
	}
}

// TestSecretRoundTrip: the token secret survives the envelope.
func TestSecretRoundTrip(t *testing.T) {
	secret := []byte("0123456789abcdef0123456789abcdef")
	got, err := replica.DecodeSecret(replica.EncodeSecret(secret))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(secret) {
		t.Fatalf("secret round-trip: %q", got)
	}
	if _, err := replica.DecodeSecret("not-base64!"); err == nil {
		t.Fatal("garbage secret decoded")
	}
}

// TestPublisherCloseDropsPeers: Close hangs up every stream; a
// connected replica's reader exits and its watchdog takes over.
func TestPublisherCloseDropsPeers(t *testing.T) {
	p := startPrimary(t, 20*time.Millisecond)
	r := p.connect(t, 100*time.Millisecond)
	p.pub.Close()
	waitFor(t, 5*time.Second, "replica to fail closed after publisher close", r.Stale)
	if len(p.pub.Peers()) != 0 {
		t.Fatalf("%d peers survive Close", len(p.pub.Peers()))
	}
	if err := p.pub.Barrier(1, 10*time.Millisecond); err == nil {
		t.Fatal("barrier on a closed publisher succeeded")
	}
	if _, _, err := p.pub.Subscribe("late"); err == nil {
		t.Fatal("subscribe on a closed publisher succeeded")
	}
}

// TestReplicaAppliesRegistryAndLatticeDeltas: the append-only shards
// replicate too — new levels, categories, principals, and group
// membership (including the revoking removal) all land on the replica
// through the ordinary delta stream.
func TestReplicaAppliesRegistryAndLatticeDeltas(t *testing.T) {
	p := startPrimary(t, 50*time.Millisecond)
	r := p.connect(t, 10*time.Second)

	sys := p.w.Sys
	if _, err := sys.Lattice().DefineLevel("ultra"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Lattice().DefineCategory("dept-3"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddPrincipal("carol", "ultra:{dept-3}"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Registry().AddGroup("ops"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Registry().AddMember("ops", "carol"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Registry().AddMember("ops", "alice"); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Registry().RemoveMemberAt("ops", "alice")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "registry deltas to apply", func() bool {
		return r.AppliedVersion() >= v
	})

	frozen := r.System().Registry().Freeze()
	if !frozen.HasGroup("ops") {
		t.Fatal("group ops missing on the replica")
	}
	members, err := r.System().Registry().Members("ops")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || !strings.Contains(members[0], "carol") {
		t.Fatalf("ops members on replica = %v, want carol only (alice revoked)", members)
	}
	// carol exists with the new lattice coordinates: a context resolves.
	carolTok, err := p.w.Sys.Registry().IssueToken("carol")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.System().NewContextFromToken(carolTok); err != nil {
		t.Fatalf("carol (new level/category) unusable on replica: %v", err)
	}
}

// fakePrimary runs fn on the first accepted connection; used to drive
// the replica client against crafted or broken primaries.
func fakePrimary(t *testing.T, fn func(conn net.Conn, sc *bufio.Scanner)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		sc := bufio.NewScanner(conn)
		fn(conn, sc)
	}()
	return l.Addr().String()
}

// handshake answers the greeting/HELLO/AUTH/SUBSCRIBE sequence like a
// real primary, leaving the snapshot line to the caller.
func handshake(conn net.Conn, sc *bufio.Scanner) {
	fmt.Fprintf(conn, "OK secext ready\n")
	for i := 0; i < 3 && sc.Scan(); i++ { // HELLO, AUTH, SUBSCRIBE
		cmd, _, _ := strings.Cut(sc.Text(), " ")
		switch cmd {
		case "HELLO":
			fmt.Fprintf(conn, "OK proto 2\n")
		default:
			fmt.Fprintf(conn, "OK\n")
		}
	}
}

// TestConnectRejectsBrokenPrimaries: each malformed handshake or
// snapshot yields a clean error naming the failing stage.
func TestConnectRejectsBrokenPrimaries(t *testing.T) {
	cases := []struct {
		name string
		fn   func(conn net.Conn, sc *bufio.Scanner)
		want string
	}{
		{"bad greeting", func(conn net.Conn, sc *bufio.Scanner) {
			fmt.Fprintf(conn, "HI\n")
		}, "greeting"},
		{"hangup before snapshot", func(conn net.Conn, sc *bufio.Scanner) {
			handshake(conn, sc)
		}, "before snapshot"},
		{"old proto", func(conn net.Conn, sc *bufio.Scanner) {
			fmt.Fprintf(conn, "OK secext ready\n")
			if sc.Scan() {
				fmt.Fprintf(conn, "OK proto 1\n")
			}
			sc.Scan()
		}, "protocol >= 2"},
		{"not a snapshot", func(conn net.Conn, sc *bufio.Scanner) {
			handshake(conn, sc)
			fmt.Fprintf(conn, "GARBAGE x\n")
			sc.Scan()
		}, "expected SNAPSHOT"},
		{"snapshot not json", func(conn net.Conn, sc *bufio.Scanner) {
			handshake(conn, sc)
			fmt.Fprintf(conn, "SNAPSHOT {nope\n")
			sc.Scan()
		}, "decoding snapshot"},
		{"empty snapshot", func(conn net.Conn, sc *bufio.Scanner) {
			handshake(conn, sc)
			fmt.Fprintf(conn, "SNAPSHOT {}\n")
			sc.Scan()
		}, "no epoch"},
		{"no levels", func(conn net.Conn, sc *bufio.Scanner) {
			handshake(conn, sc)
			fmt.Fprintf(conn, "SNAPSHOT {\"epoch\":{\"version\":1}}\n")
			sc.Scan()
		}, "no lattice levels"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := fakePrimary(t, tc.fn)
			_, err := replica.Connect(replica.Options{Addr: addr, Token: "x"})
			if err == nil {
				t.Fatal("Connect succeeded against a broken primary")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want it to mention %q", err, tc.want)
			}
		})
	}
}

// realSnapshot captures a valid snapshot body from a live publisher so
// the fake primary can replay it and then misbehave mid-stream.
func realSnapshot(t *testing.T, p *primary) []byte {
	t.Helper()
	peer, body, err := p.pub.Subscribe("capture")
	if err != nil {
		t.Fatal(err)
	}
	p.pub.Remove(peer)
	return body
}

// TestStreamFailuresRecordErr: garbage or explicit errors on an
// established stream end it with a recorded Err; the replica keeps
// serving under the bounded-stale contract until its deadline.
func TestStreamFailuresRecordErr(t *testing.T) {
	p := startPrimary(t, time.Hour)
	snap := realSnapshot(t, p)
	cases := []struct {
		name string
		line string
		want string
	}{
		{"delta not json", "DELTA {nope", "decoding delta"},
		{"delta bad stack", `DELTA {"version":99,"stack":["quota"]}`, "applying delta"},
		{"primary error", "ERR boom", "primary error: boom"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			addr := fakePrimary(t, func(conn net.Conn, sc *bufio.Scanner) {
				handshake(conn, sc)
				fmt.Fprintf(conn, "SNAPSHOT %s\n", snap)
				sc.Scan() // the bootstrap ACK
				// An unknown informational line is ignored...
				fmt.Fprintf(conn, "NOTICE upgrade scheduled\n")
				// ...then the poison line.
				fmt.Fprintf(conn, "%s\n", tc.line)
				for sc.Scan() { // drain until the replica hangs up
				}
			})
			r, err := replica.Connect(replica.Options{Addr: addr, Token: "x", StaleAfter: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			waitFor(t, 5*time.Second, "stream error to be recorded", func() bool {
				return r.Err() != nil
			})
			if !strings.Contains(r.Err().Error(), tc.want) {
				t.Fatalf("Err = %v, want it to mention %q", r.Err(), tc.want)
			}
			// Bounded-stale: the stream died, but the deadline has not
			// passed — the replica still answers from its last epoch.
			rctx, err := r.System().NewContextFromToken(p.aliceTok)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.System().CheckData(rctx, "/fs/f", secext.Read); err != nil {
				t.Fatalf("replica stopped serving before its deadline: %v", err)
			}
		})
	}
}

// TestSlowPeerDropped: a peer that cannot drain its delta queue is
// dropped (channel closed, removed from the fleet) instead of growing
// the primary's memory without bound.
func TestSlowPeerDropped(t *testing.T) {
	p := startPrimary(t, time.Hour)
	peer, _, err := p.pub.Subscribe("slow")
	if err != nil {
		t.Fatal(err)
	}
	if peer.Acked() != p.w.Sys.Names().Version() {
		t.Fatalf("fresh peer acked v%d, want the snapshot version", peer.Acked())
	}
	// Nobody drains peer.Ch(): overflow the queue.
	open := secext.NewACL(secext.AllowEveryone(secext.Read))
	closed := secext.NewACL(secext.AllowEveryone(secext.List))
	for i := 0; i < 1100; i++ {
		next := open
		if i%2 == 0 {
			next = closed
		}
		if err := p.w.Sys.Names().SetACLUnchecked("/fs/f", next); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "slow peer to be dropped", func() bool {
		return len(p.pub.Peers()) == 0
	})
	// The closed channel is the hangup signal the connection layer sees.
	waitFor(t, 10*time.Second, "peer channel to close", func() bool {
		for {
			select {
			case _, ok := <-peer.Ch():
				if !ok {
					return true
				}
			default:
				return false
			}
		}
	})
}

// TestSnapshotCompressionRoundTrip pins the SNAPSHOT-GZ codec: a body
// survives compress/decompress byte-identically, compresses a
// repetitive policy payload smaller than plaintext, and malformed
// payloads fail with clean errors instead of garbage.
func TestSnapshotCompressionRoundTrip(t *testing.T) {
	body := []byte(strings.Repeat(`{"path":"/svc/printer/enqueue","acl":"allow * read,list"}`, 200))
	gz, err := replica.CompressSnapshot(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(gz) >= len(body) {
		t.Errorf("compressed %d bytes >= raw %d bytes on a repetitive payload", len(gz), len(body))
	}
	back, err := replica.DecompressSnapshot(gz)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(body) {
		t.Error("round trip not identical")
	}

	if _, err := replica.DecompressSnapshot("!!!not-base64!!!"); err == nil {
		t.Error("malformed base64 accepted")
	}
	// Valid base64 of bytes that are not a gzip stream.
	if _, err := replica.DecompressSnapshot("bm90IGd6aXA="); err == nil {
		t.Error("non-gzip payload accepted")
	}
}
