// Package logsvc is an append-only journal service demonstrating the
// paper's write-append mode (§2.1/§2.2): low-trust subjects report
// upward into a high-classified journal they can neither read nor
// rewrite, while readers at or above the journal's class audit the
// whole stream. Experiment E10 is built on it.
package logsvc

import (
	"fmt"
	"sync"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/lattice"
	"secext/internal/names"
	"secext/internal/subject"
)

// Entry is one journal record: who appended, at what class, and what.
type Entry struct {
	Subject string
	Class   string
	Line    string
}

// journalData is the node payload.
type journalData struct {
	mu      sync.RWMutex
	entries []Entry
}

// Journal is one append-only log object plus its service entry points.
type Journal struct {
	sys  *core.System
	path string
	data *journalData
}

// New creates the journal node at path with the given protection and
// registers append and read services under ifacePath. A typical setup
// grants everyone write-append on the journal node, labels it high, and
// reserves read for auditors.
func New(sys *core.System, path, ifacePath string, jACL *acl.ACL, class lattice.Class, svcACL *acl.ACL) (*Journal, error) {
	data := &journalData{}
	j := &Journal{sys: sys, path: path, data: data}
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: path, Kind: names.KindFile, ACL: jACL, Class: class,
	}); err != nil {
		return nil, err
	}
	if err := sys.Names().SetPayload(path, data); err != nil {
		return nil, err
	}
	bot, err := sys.Lattice().Bottom()
	if err != nil {
		return nil, err
	}
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: ifacePath, Kind: names.KindInterface,
		ACL: acl.New(acl.AllowEveryone(acl.List)), Class: bot,
	}); err != nil {
		return nil, err
	}
	handlers := map[string]dispatch.Handler{
		"append": func(ctx *subject.Context, arg any) (any, error) {
			line, ok := arg.(string)
			if !ok {
				return nil, fmt.Errorf("logsvc: bad request type %T", arg)
			}
			return nil, j.Append(ctx, line)
		},
		"read": func(ctx *subject.Context, arg any) (any, error) {
			return j.Read(ctx)
		},
	}
	for _, name := range []string{"append", "read"} {
		err := sys.RegisterService(core.ServiceSpec{
			Path: names.Join(ifacePath, name), ACL: svcACL, Class: bot,
			Base: dispatch.Binding{Owner: "logsvc", Handler: handlers[name]},
		})
		if err != nil {
			return nil, err
		}
	}
	return j, nil
}

// Append adds a line to the journal. Requires only write-append on the
// journal node: callers below the journal's class can report up without
// being able to read or destroy the record.
func (j *Journal) Append(ctx *subject.Context, line string) error {
	if _, err := j.sys.CheckData(ctx, j.path, acl.WriteAppend); err != nil {
		return err
	}
	j.data.mu.Lock()
	defer j.data.mu.Unlock()
	j.data.entries = append(j.data.entries, Entry{
		Subject: ctx.SubjectName(),
		Class:   ctx.Class().String(),
		Line:    line,
	})
	return nil
}

// Read returns a copy of the full journal. Requires read: only
// subjects dominating the journal's class see it.
func (j *Journal) Read(ctx *subject.Context) ([]Entry, error) {
	if _, err := j.sys.CheckData(ctx, j.path, acl.Read); err != nil {
		return nil, err
	}
	j.data.mu.RLock()
	defer j.data.mu.RUnlock()
	out := make([]Entry, len(j.data.entries))
	copy(out, j.data.entries)
	return out, nil
}

// Truncate destructively clears the journal. Destructive, so it needs
// read and write (class equality under MAC), like fsys.Write.
func (j *Journal) Truncate(ctx *subject.Context) error {
	if _, err := j.sys.CheckData(ctx, j.path, acl.Read|acl.Write); err != nil {
		return err
	}
	j.data.mu.Lock()
	defer j.data.mu.Unlock()
	j.data.entries = nil
	return nil
}

// Len returns the number of entries with no access check (harness use).
func (j *Journal) Len() int {
	j.data.mu.RLock()
	defer j.data.mu.RUnlock()
	return len(j.data.entries)
}

// Path returns the journal node's path.
func (j *Journal) Path() string { return j.path }
