package logsvc

import (
	"testing"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/names"
	"secext/internal/subject"
)

type world struct {
	sys *core.System
	j   *Journal
}

// newWorld builds a journal classified local (top level) that everyone
// may append to but only local subjects may read.
func newWorld(t *testing.T) *world {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Levels: []string{"others", "organization", "local"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateNode(core.NodeSpec{Path: "/svc", Kind: names.KindDomain,
		ACL: acl.New(acl.AllowEveryone(acl.List))}); err != nil {
		t.Fatal(err)
	}
	jACL := acl.New(
		acl.AllowEveryone(acl.WriteAppend),
		acl.Allow("auditor", acl.Read|acl.Write),
	)
	j, err := New(sys, "/svc/journal", "/svc/log",
		jACL, sys.Lattice().MustClass("local"),
		acl.New(acl.AllowEveryone(acl.Execute|acl.List)))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct{ name, class string }{
		{"auditor", "local"},
		{"applet", "others"},
		{"worker", "organization"},
	} {
		if _, err := sys.AddPrincipal(p.name, p.class); err != nil {
			t.Fatal(err)
		}
	}
	return &world{sys: sys, j: j}
}

func (w *world) ctx(t *testing.T, name string) *subject.Context {
	t.Helper()
	ctx, err := w.sys.NewContext(name)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestAppendUpReadDown(t *testing.T) {
	w := newWorld(t)
	applet := w.ctx(t, "applet")
	worker := w.ctx(t, "worker")
	auditor := w.ctx(t, "auditor")

	// E10 core property: everyone below can append...
	if err := w.j.Append(applet, "applet was here"); err != nil {
		t.Fatalf("applet append: %v", err)
	}
	if err := w.j.Append(worker, "worker event"); err != nil {
		t.Fatalf("worker append: %v", err)
	}
	// ...but cannot read back or truncate.
	if _, err := w.j.Read(applet); !core.IsDenied(err) {
		t.Errorf("applet read: got %v", err)
	}
	if err := w.j.Truncate(applet); !core.IsDenied(err) {
		t.Errorf("applet truncate: got %v", err)
	}
	if err := w.j.Truncate(worker); !core.IsDenied(err) {
		t.Errorf("worker truncate: got %v", err)
	}

	// The auditor reads everything in order, with attribution.
	got, err := w.j.Read(auditor)
	if err != nil {
		t.Fatalf("auditor read: %v", err)
	}
	if len(got) != 2 || got[0].Subject != "applet" || got[1].Subject != "worker" {
		t.Errorf("journal = %+v", got)
	}
	if got[0].Class != "others" || got[1].Class != "organization" {
		t.Errorf("classes = %+v", got)
	}
	if w.j.Len() != 2 || w.j.Path() != "/svc/journal" {
		t.Error("Len/Path accessors")
	}

	// The auditor at the journal's class may truncate.
	if err := w.j.Truncate(auditor); err != nil {
		t.Fatalf("auditor truncate: %v", err)
	}
	if w.j.Len() != 0 {
		t.Error("journal must be empty")
	}
}

func TestServiceEndpoints(t *testing.T) {
	w := newWorld(t)
	applet := w.ctx(t, "applet")
	auditor := w.ctx(t, "auditor")
	if _, err := w.sys.Call(applet, "/svc/log/append", "hello"); err != nil {
		t.Fatalf("append via service: %v", err)
	}
	if _, err := w.sys.Call(applet, "/svc/log/append", 42); err == nil {
		t.Error("bad append arg must fail")
	}
	if _, err := w.sys.Call(applet, "/svc/log/read", nil); !core.IsDenied(err) {
		t.Error("applet read via service must be denied")
	}
	out, err := w.sys.Call(auditor, "/svc/log/read", nil)
	if err != nil {
		t.Fatalf("auditor read via service: %v", err)
	}
	entries := out.([]Entry)
	if len(entries) != 1 || entries[0].Line != "hello" {
		t.Errorf("entries = %+v", entries)
	}
}

func TestDACStillGatesAppend(t *testing.T) {
	// MAC would allow the append (write up), but without the
	// write-append mode on the ACL the DAC layer denies.
	w := newWorld(t)
	jACL := acl.New(acl.Allow("auditor", acl.Read|acl.Write))
	if err := w.sys.Names().SetACLUnchecked("/svc/journal", jACL); err != nil {
		t.Fatal(err)
	}
	if err := w.j.Append(w.ctx(t, "applet"), "x"); !core.IsDenied(err) {
		t.Errorf("append without mode: got %v", err)
	}
}
