// Package mbuf is a protected buffer-pool service, the substrate the
// paper's §1.1 example extension builds on: "the extension that
// implements the new file system uses existing services (such as mbuf
// management) and builds on them". Buffers are fixed-size chunks handed
// out from a free list; allocation and release are services in the name
// space, so an extension may use them only if it was granted execute on
// them — exactly the import the S3 scenario links.
package mbuf

import (
	"errors"
	"fmt"
	"sync"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/names"
	"secext/internal/subject"
)

// Errors returned by the buffer service.
var (
	ErrExhausted  = errors.New("mbuf: pool exhausted")
	ErrBadBuffer  = errors.New("mbuf: buffer not issued by this pool")
	ErrDoubleFree = errors.New("mbuf: buffer already free")
)

// Buffer is one pool buffer. The ID ties it back to the pool; Data is
// the usable storage.
type Buffer struct {
	ID   int
	Data []byte
}

// Stats describes pool occupancy.
type Stats struct {
	Size        int // total buffers
	InUse       int
	Allocs      uint64
	Frees       uint64
	ExhaustHits uint64
}

// Pool is the buffer pool service.
type Pool struct {
	bufSize int

	mu      sync.Mutex
	free    []int
	inUse   map[int]bool
	storage [][]byte
	stats   Stats
}

// NewPool creates a pool of count buffers of bufSize bytes and
// registers alloc, free, and stats services under ifacePath.
func NewPool(sys *core.System, ifacePath string, count, bufSize int, svcACL *acl.ACL) (*Pool, error) {
	if count <= 0 || bufSize <= 0 {
		return nil, fmt.Errorf("mbuf: pool dimensions must be positive (%d x %d)", count, bufSize)
	}
	bot, err := sys.Lattice().Bottom()
	if err != nil {
		return nil, err
	}
	p := &Pool{
		bufSize: bufSize,
		free:    make([]int, count),
		inUse:   make(map[int]bool, count),
		storage: make([][]byte, count),
	}
	for i := 0; i < count; i++ {
		p.free[i] = count - 1 - i // pop from the end -> ascending IDs
		p.storage[i] = make([]byte, bufSize)
	}
	p.stats.Size = count

	if _, err := sys.CreateNode(core.NodeSpec{
		Path: ifacePath, Kind: names.KindInterface,
		ACL: acl.New(acl.AllowEveryone(acl.List)), Class: bot,
	}); err != nil {
		return nil, err
	}
	handlers := map[string]dispatch.Handler{
		"alloc": func(ctx *subject.Context, arg any) (any, error) { return p.Alloc() },
		"free": func(ctx *subject.Context, arg any) (any, error) {
			b, ok := arg.(Buffer)
			if !ok {
				return nil, fmt.Errorf("mbuf: bad request type %T", arg)
			}
			return nil, p.Free(b)
		},
		"stats": func(ctx *subject.Context, arg any) (any, error) { return p.Stats(), nil },
	}
	for _, name := range []string{"alloc", "free", "stats"} {
		err := sys.RegisterService(core.ServiceSpec{
			Path: names.Join(ifacePath, name), ACL: svcACL, Class: bot,
			Base: dispatch.Binding{Owner: "mbuf", Handler: handlers[name]},
		})
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Alloc hands out a free buffer, zeroed.
func (p *Pool) Alloc() (Buffer, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 {
		p.stats.ExhaustHits++
		return Buffer{}, ErrExhausted
	}
	id := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[id] = true
	p.stats.InUse++
	p.stats.Allocs++
	buf := p.storage[id]
	for i := range buf {
		buf[i] = 0
	}
	return Buffer{ID: id, Data: buf}, nil
}

// Free returns a buffer to the pool.
func (p *Pool) Free(b Buffer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b.ID < 0 || b.ID >= len(p.storage) {
		return fmt.Errorf("%w: id %d", ErrBadBuffer, b.ID)
	}
	if !p.inUse[b.ID] {
		return fmt.Errorf("%w: id %d", ErrDoubleFree, b.ID)
	}
	delete(p.inUse, b.ID)
	p.free = append(p.free, b.ID)
	p.stats.InUse--
	p.stats.Frees++
	return nil
}

// Stats returns a snapshot of pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// BufSize returns the size of each buffer.
func (p *Pool) BufSize() int { return p.bufSize }
