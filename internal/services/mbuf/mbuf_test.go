package mbuf

import (
	"errors"
	"sync"
	"testing"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/names"
	"secext/internal/subject"
)

func newWorld(t *testing.T, svcACL *acl.ACL) (*core.System, *Pool) {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Levels: []string{"low", "high"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateNode(core.NodeSpec{Path: "/svc", Kind: names.KindDomain,
		ACL: acl.New(acl.AllowEveryone(acl.List))}); err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(sys, "/svc/mbuf", 4, 64, svcACL)
	if err != nil {
		t.Fatal(err)
	}
	return sys, p
}

func ctxFor(t *testing.T, sys *core.System, name, class string) *subject.Context {
	t.Helper()
	if _, err := sys.Registry().Principal(name); err != nil {
		if _, err := sys.AddPrincipal(name, class); err != nil {
			t.Fatal(err)
		}
	}
	ctx, err := sys.NewContext(name)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestAllocFreeCycle(t *testing.T) {
	_, p := newWorld(t, acl.New(acl.AllowEveryone(acl.Execute)))
	b1, err := p.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if len(b1.Data) != 64 {
		t.Errorf("buf size = %d", len(b1.Data))
	}
	b1.Data[0] = 0xFF
	if err := p.Free(b1); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// Reallocation zeroes the buffer.
	var b2 Buffer
	for i := 0; i < 4; i++ {
		b, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if b.ID == b1.ID {
			b2 = b
		}
	}
	if b2.Data == nil {
		t.Fatal("recycled buffer not returned")
	}
	if b2.Data[0] != 0 {
		t.Error("recycled buffer must be zeroed")
	}
}

func TestExhaustion(t *testing.T) {
	_, p := newWorld(t, acl.New(acl.AllowEveryone(acl.Execute)))
	var bufs []Buffer
	for i := 0; i < 4; i++ {
		b, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		bufs = append(bufs, b)
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrExhausted) {
		t.Errorf("exhausted: got %v", err)
	}
	st := p.Stats()
	if st.InUse != 4 || st.Allocs != 4 || st.ExhaustHits != 1 {
		t.Errorf("Stats = %+v", st)
	}
	for _, b := range bufs {
		if err := p.Free(b); err != nil {
			t.Fatal(err)
		}
	}
	if st := p.Stats(); st.InUse != 0 || st.Frees != 4 {
		t.Errorf("Stats after free = %+v", st)
	}
}

func TestFreeErrors(t *testing.T) {
	_, p := newWorld(t, acl.New(acl.AllowEveryone(acl.Execute)))
	if err := p.Free(Buffer{ID: -1}); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("negative id: got %v", err)
	}
	if err := p.Free(Buffer{ID: 100}); !errors.Is(err, ErrBadBuffer) {
		t.Errorf("out of range id: got %v", err)
	}
	b, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b); !errors.Is(err, ErrDoubleFree) {
		t.Errorf("double free: got %v", err)
	}
}

func TestPoolDimensionValidation(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Levels: []string{"l"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPool(sys, "/svc-mbuf", 0, 64, acl.New()); err == nil {
		t.Error("zero count must fail")
	}
	if _, err := NewPool(sys, "/svc-mbuf", 4, 0, acl.New()); err == nil {
		t.Error("zero size must fail")
	}
}

func TestServiceEndpoints(t *testing.T) {
	svcACL := acl.New(acl.Allow("driver", acl.Execute))
	sys, _ := newWorld(t, svcACL)
	driver := ctxFor(t, sys, "driver", "low")
	out, err := sys.Call(driver, "/svc/mbuf/alloc", nil)
	if err != nil {
		t.Fatalf("alloc via service: %v", err)
	}
	b := out.(Buffer)
	st, err := sys.Call(driver, "/svc/mbuf/stats", nil)
	if err != nil || st.(Stats).InUse != 1 {
		t.Fatalf("stats via service = %+v, %v", st, err)
	}
	if _, err := sys.Call(driver, "/svc/mbuf/free", b); err != nil {
		t.Fatalf("free via service: %v", err)
	}
	if _, err := sys.Call(driver, "/svc/mbuf/free", "junk"); err == nil {
		t.Error("bad free arg must fail")
	}
	// An unauthorized principal cannot even allocate.
	eve := ctxFor(t, sys, "eve", "low")
	if _, err := sys.Call(eve, "/svc/mbuf/alloc", nil); !core.IsDenied(err) {
		t.Errorf("unauthorized alloc: got %v", err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	sys, err := core.NewSystem(core.Options{Levels: []string{"l"}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(sys, "/mbuf", 64, 32, acl.New(acl.AllowEveryone(acl.Execute)))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				b, err := p.Alloc()
				if err != nil {
					continue // exhaustion is fine under contention
				}
				b.Data[0] = byte(j)
				if err := p.Free(b); err != nil {
					t.Errorf("free: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := p.Stats(); st.InUse != 0 {
		t.Errorf("leaked buffers: %+v", st)
	}
}
