// Package netsvc is a protected message-passing service: named
// endpoints that principals open, send to, and receive from. It stands
// in for the communication substrate of the paper's distributed
// examples (applets "originating from outside the organization" arrive
// over exactly such channels, and Inferno — §1 — is the
// communication-centric member of the surveyed systems).
//
// Every endpoint is a node in the universal name space, so the same
// two-layer decision governs messaging as everything else:
//
//   - sending is a write-append to the endpoint — anyone the DAC layer
//     admits may send *up* to a more trusted endpoint, but never down,
//     and incomparable compartments cannot exchange messages at all;
//   - receiving is a read — only subjects dominating the endpoint (in
//     practice its owner's compartment) can take delivery.
//
// The asymmetry is the lattice's report-up channel applied to IPC.
package netsvc

import (
	"errors"
	"fmt"
	"sync"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/names"
	"secext/internal/subject"
)

// Errors returned by the network service.
var (
	ErrNotEndpoint = errors.New("netsvc: not an endpoint")
	ErrEmpty       = errors.New("netsvc: no messages queued")
	ErrQueueFull   = errors.New("netsvc: endpoint queue full")
)

// DefaultQueueDepth bounds each endpoint's mailbox.
const DefaultQueueDepth = 64

// Message is one delivered datagram, attributed to its sender.
type Message struct {
	From      string // sending principal
	FromClass string // sender's class label at send time
	Data      []byte
}

// endpoint is the node payload.
type endpoint struct {
	mu    sync.Mutex
	queue []Message
	depth int
}

// Request argument types for the service entry points.
type (
	// OpenRequest creates an endpoint named Name owned by the caller.
	OpenRequest struct{ Name string }
	// SendRequest appends Data to the endpoint's queue.
	SendRequest struct {
		Name string
		Data []byte
	}
	// RecvRequest dequeues the oldest message.
	RecvRequest struct{ Name string }
	// CloseRequest removes the endpoint.
	CloseRequest struct{ Name string }
)

// Net is the message-passing service rooted at one directory.
type Net struct {
	sys   *core.System
	dir   string
	depth int
}

// New creates the endpoint directory at dir (multilevel, so principals
// at any class can open endpoints) and registers open, send, recv, and
// close services under ifacePath.
func New(sys *core.System, dir, ifacePath string, svcACL *acl.ACL, queueDepth int) (*Net, error) {
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	bot, err := sys.Lattice().Bottom()
	if err != nil {
		return nil, err
	}
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: dir, Kind: names.KindObject,
		ACL:        acl.New(acl.AllowEveryone(acl.List | acl.Write)),
		Class:      bot,
		Multilevel: true,
	}); err != nil {
		return nil, err
	}
	n := &Net{sys: sys, dir: dir, depth: queueDepth}
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: ifacePath, Kind: names.KindInterface,
		ACL: acl.New(acl.AllowEveryone(acl.List)), Class: bot,
	}); err != nil {
		return nil, err
	}
	handlers := map[string]dispatch.Handler{
		"open": func(ctx *subject.Context, arg any) (any, error) {
			r, ok := arg.(OpenRequest)
			if !ok {
				return nil, fmt.Errorf("netsvc: bad request type %T", arg)
			}
			return nil, n.Open(ctx, r.Name)
		},
		"send": func(ctx *subject.Context, arg any) (any, error) {
			r, ok := arg.(SendRequest)
			if !ok {
				return nil, fmt.Errorf("netsvc: bad request type %T", arg)
			}
			return nil, n.Send(ctx, r.Name, r.Data)
		},
		"recv": func(ctx *subject.Context, arg any) (any, error) {
			r, ok := arg.(RecvRequest)
			if !ok {
				return nil, fmt.Errorf("netsvc: bad request type %T", arg)
			}
			return n.Recv(ctx, r.Name)
		},
		"close": func(ctx *subject.Context, arg any) (any, error) {
			r, ok := arg.(CloseRequest)
			if !ok {
				return nil, fmt.Errorf("netsvc: bad request type %T", arg)
			}
			return nil, n.Close(ctx, r.Name)
		},
	}
	for _, name := range []string{"open", "send", "recv", "close"} {
		err := sys.RegisterService(core.ServiceSpec{
			Path: names.Join(ifacePath, name), ACL: svcACL, Class: bot,
			Base: dispatch.Binding{Owner: "netsvc", Handler: handlers[name]},
		})
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Open creates an endpoint at the caller's class. The endpoint's ACL
// lets everyone send (write-append; MAC still forbids write-down and
// cross-compartment sends) and only the owner receive or close.
func (n *Net) Open(ctx *subject.Context, name string) error {
	epACL := acl.New(
		acl.AllowEveryone(acl.WriteAppend|acl.List),
		acl.Allow(ctx.SubjectName(), acl.Read|acl.Delete),
	)
	_, err := n.sys.Bind(ctx, n.dir, names.BindSpec{
		Name: name, Kind: names.KindObject,
		ACL: epACL, Class: ctx.Class(),
		Payload: &endpoint{depth: n.depth},
	})
	return err
}

func (n *Net) resolve(ctx *subject.Context, name string, modes acl.Mode) (*endpoint, error) {
	node, err := n.sys.CheckData(ctx, names.Join(n.dir, name), modes)
	if err != nil {
		return nil, err
	}
	ep, ok := node.Payload().(*endpoint)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotEndpoint, name)
	}
	return ep, nil
}

// Send appends a message to the endpoint's queue (write-append).
func (n *Net) Send(ctx *subject.Context, name string, data []byte) error {
	ep, err := n.resolve(ctx, name, acl.WriteAppend)
	if err != nil {
		return err
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.queue) >= ep.depth {
		return fmt.Errorf("%w: %s", ErrQueueFull, name)
	}
	ep.queue = append(ep.queue, Message{
		From:      ctx.SubjectName(),
		FromClass: ctx.Class().String(),
		Data:      append([]byte(nil), data...),
	})
	return nil
}

// Recv dequeues the oldest message (read).
func (n *Net) Recv(ctx *subject.Context, name string) (Message, error) {
	ep, err := n.resolve(ctx, name, acl.Read)
	if err != nil {
		return Message{}, err
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if len(ep.queue) == 0 {
		return Message{}, fmt.Errorf("%w: %s", ErrEmpty, name)
	}
	m := ep.queue[0]
	ep.queue = ep.queue[1:]
	return m, nil
}

// Pending reports the queue length (read).
func (n *Net) Pending(ctx *subject.Context, name string) (int, error) {
	ep, err := n.resolve(ctx, name, acl.Read)
	if err != nil {
		return 0, err
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return len(ep.queue), nil
}

// Close removes the endpoint (delete on the node).
func (n *Net) Close(ctx *subject.Context, name string) error {
	return n.sys.Unbind(ctx, names.Join(n.dir, name))
}

// Endpoints lists the endpoint names visible to ctx.
func (n *Net) Endpoints(ctx *subject.Context) ([]string, error) {
	return n.sys.List(ctx, n.dir)
}
