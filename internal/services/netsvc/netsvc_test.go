package netsvc

import (
	"bytes"
	"errors"
	"testing"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/names"
	"secext/internal/subject"
)

type world struct {
	sys *core.System
	net *Net
}

func newWorld(t *testing.T, depth int) *world {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateNode(core.NodeSpec{Path: "/svc", Kind: names.KindDomain,
		ACL: acl.New(acl.AllowEveryone(acl.List))}); err != nil {
		t.Fatal(err)
	}
	n, err := New(sys, "/net", "/svc/net",
		acl.New(acl.AllowEveryone(acl.Execute|acl.List)), depth)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct{ name, class string }{
		{"d1", "organization:{dept-1}"},
		{"d1peer", "organization:{dept-1}"},
		{"d2", "organization:{dept-2}"},
		{"low", "others"},
		{"admin", "local:{dept-1,dept-2}"},
	} {
		if _, err := sys.AddPrincipal(p.name, p.class); err != nil {
			t.Fatal(err)
		}
	}
	return &world{sys: sys, net: n}
}

func (w *world) ctx(t *testing.T, name string) *subject.Context {
	t.Helper()
	c, err := w.sys.NewContext(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOpenSendRecvRoundTrip(t *testing.T) {
	w := newWorld(t, 0)
	d1 := w.ctx(t, "d1")
	if err := w.net.Open(d1, "inbox"); err != nil {
		t.Fatalf("Open: %v", err)
	}
	peer := w.ctx(t, "d1peer")
	if err := w.net.Send(peer, "inbox", []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	pend, err := w.net.Pending(d1, "inbox")
	if err != nil || pend != 1 {
		t.Fatalf("Pending = %d, %v", pend, err)
	}
	m, err := w.net.Recv(d1, "inbox")
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if m.From != "d1peer" || !bytes.Equal(m.Data, []byte("hello")) {
		t.Errorf("message = %+v", m)
	}
	if m.FromClass != "organization:{dept-1}" {
		t.Errorf("FromClass = %s", m.FromClass)
	}
	if _, err := w.net.Recv(d1, "inbox"); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty queue: got %v", err)
	}
}

func TestSendIsolationAcrossCompartments(t *testing.T) {
	w := newWorld(t, 0)
	d1 := w.ctx(t, "d1")
	if err := w.net.Open(d1, "inbox"); err != nil {
		t.Fatal(err)
	}
	// dept-2 is incomparable with dept-1: send denied by MAC.
	if err := w.net.Send(w.ctx(t, "d2"), "inbox", []byte("x")); !core.IsDenied(err) {
		t.Errorf("cross-compartment send: got %v", err)
	}
	// A low principal may send *up* into dept-1 (report-up channel).
	if err := w.net.Send(w.ctx(t, "low"), "inbox", []byte("up")); err != nil {
		t.Errorf("send up: %v", err)
	}
	// ... but can neither receive from it nor even see its depth.
	if _, err := w.net.Recv(w.ctx(t, "low"), "inbox"); !core.IsDenied(err) {
		t.Errorf("recv from below: got %v", err)
	}
	if _, err := w.net.Pending(w.ctx(t, "low"), "inbox"); !core.IsDenied(err) {
		t.Errorf("pending from below: got %v", err)
	}
	// The admin dominates dept-1 but is not the owner: DAC denies read.
	if _, err := w.net.Recv(w.ctx(t, "admin"), "inbox"); !core.IsDenied(err) {
		t.Errorf("non-owner recv: got %v", err)
	}
	m, err := w.net.Recv(d1, "inbox")
	if err != nil || m.From != "low" {
		t.Errorf("owner recv = %+v, %v", m, err)
	}
}

func TestQueueBounded(t *testing.T) {
	w := newWorld(t, 2)
	d1 := w.ctx(t, "d1")
	if err := w.net.Open(d1, "q"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.net.Send(d1, "q", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.net.Send(d1, "q", []byte("x")); !errors.Is(err, ErrQueueFull) {
		t.Errorf("full queue: got %v", err)
	}
	if _, err := w.net.Recv(d1, "q"); err != nil {
		t.Fatal(err)
	}
	if err := w.net.Send(d1, "q", []byte("x")); err != nil {
		t.Errorf("send after drain: %v", err)
	}
}

func TestCloseAndOwnership(t *testing.T) {
	w := newWorld(t, 0)
	d1 := w.ctx(t, "d1")
	if err := w.net.Open(d1, "ep"); err != nil {
		t.Fatal(err)
	}
	// Peer (same compartment, not owner) cannot close.
	if err := w.net.Close(w.ctx(t, "d1peer"), "ep"); !core.IsDenied(err) {
		t.Errorf("non-owner close: got %v", err)
	}
	if err := w.net.Close(d1, "ep"); err != nil {
		t.Fatalf("owner close: %v", err)
	}
	if err := w.net.Send(d1, "ep", nil); !errors.Is(err, names.ErrNotFound) {
		t.Errorf("send after close: got %v", err)
	}
	// Duplicate open.
	if err := w.net.Open(d1, "dup"); err != nil {
		t.Fatal(err)
	}
	if err := w.net.Open(d1, "dup"); !errors.Is(err, names.ErrExists) {
		t.Errorf("dup open: got %v", err)
	}
}

func TestServiceEndpoints(t *testing.T) {
	w := newWorld(t, 0)
	d1 := w.ctx(t, "d1")
	if _, err := w.sys.Call(d1, "/svc/net/open", OpenRequest{Name: "svc-ep"}); err != nil {
		t.Fatalf("open via service: %v", err)
	}
	if _, err := w.sys.Call(d1, "/svc/net/send", SendRequest{Name: "svc-ep", Data: []byte("m")}); err != nil {
		t.Fatalf("send via service: %v", err)
	}
	out, err := w.sys.Call(d1, "/svc/net/recv", RecvRequest{Name: "svc-ep"})
	if err != nil || string(out.(Message).Data) != "m" {
		t.Fatalf("recv via service = %v, %v", out, err)
	}
	eps, err := w.net.Endpoints(d1)
	if err != nil || len(eps) != 1 || eps[0] != "svc-ep" {
		t.Fatalf("Endpoints = %v, %v", eps, err)
	}
	if _, err := w.sys.Call(d1, "/svc/net/close", CloseRequest{Name: "svc-ep"}); err != nil {
		t.Fatalf("close via service: %v", err)
	}
	// Bad request types on every entry point.
	for _, svc := range []string{"open", "send", "recv", "close"} {
		if _, err := w.sys.Call(d1, "/svc/net/"+svc, 42); err == nil {
			t.Errorf("%s: bad request type must fail", svc)
		}
	}
}

func TestSenderCannotForgeAttribution(t *testing.T) {
	// The monitor stamps From/FromClass from the verified context, not
	// from anything the sender controls.
	w := newWorld(t, 0)
	d1 := w.ctx(t, "d1")
	if err := w.net.Open(d1, "in"); err != nil {
		t.Fatal(err)
	}
	low := w.ctx(t, "low")
	if err := w.net.Send(low, "in", []byte("i am root")); err != nil {
		t.Fatal(err)
	}
	m, err := w.net.Recv(d1, "in")
	if err != nil || m.From != "low" || m.FromClass != "others" {
		t.Errorf("attribution = %+v, %v", m, err)
	}
	// Mutating the sent slice after Send must not alter the message.
	data := []byte("AAAA")
	if err := w.net.Send(low, "in", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'Z'
	m, _ = w.net.Recv(d1, "in")
	if string(m.Data) != "AAAA" {
		t.Error("Send must copy the payload")
	}
}
