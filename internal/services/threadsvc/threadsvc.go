// Package threadsvc is the protected thread service: threads are named,
// first-class objects in the universal name space, each carrying an ACL
// and the security class of its creator. It exists to make the paper's
// §1.2 indictment of the Java sandbox executable — McGraw & Felten's
// ThreadMurder applet "kills the threads of all other applets that are
// running in the same sandbox" because Java's thread objects are not
// access-controlled. Here, killing a thread is a write to its node, so
// both the ACL and the lattice stand between a hostile applet and its
// victims (scenario S2 in DESIGN.md).
package threadsvc

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/lattice"
	"secext/internal/names"
	"secext/internal/subject"
)

// Errors returned by the thread service.
var (
	ErrNoThread = errors.New("threadsvc: no such thread")
	ErrDead     = errors.New("threadsvc: thread already dead")
)

// Thread is one simulated thread of control. The service models the
// lifecycle (spawn/kill/join) rather than actual scheduling: the
// security question is who may do what to whom, not how threads run.
type Thread struct {
	ID    int
	Name  string
	Owner string
	Class lattice.Class

	mu       sync.Mutex
	alive    bool
	killedBy string
	done     chan struct{}
}

// Alive reports whether the thread is still running.
func (t *Thread) Alive() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.alive
}

// KilledBy returns the principal that killed the thread ("" while
// alive or if it exited on its own).
func (t *Thread) KilledBy() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.killedBy
}

// Done returns a channel closed when the thread terminates.
func (t *Thread) Done() <-chan struct{} { return t.done }

func (t *Thread) kill(by string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.alive {
		return fmt.Errorf("%w: %d", ErrDead, t.ID)
	}
	t.alive = false
	t.killedBy = by
	close(t.done)
	return nil
}

// Manager is the thread service. Threads live under dir in the name
// space; each thread node's payload is its *Thread.
type Manager struct {
	sys *core.System
	dir string

	mu      sync.Mutex
	nextID  int
	threads map[int]*Thread
}

// KillRequest is the argument of the kill service: the ID of the victim.
type KillRequest struct {
	ID int
}

// SpawnRequest is the argument of the spawn service.
type SpawnRequest struct {
	Name string
}

// New creates the thread service with its container directory at dir
// (multilevel, so principals at any class can spawn) and registers the
// spawn, kill, and list entry points under ifacePath.
func New(sys *core.System, dir, ifacePath string, svcACL *acl.ACL) (*Manager, error) {
	bot, err := sys.Lattice().Bottom()
	if err != nil {
		return nil, err
	}
	if _, err := sys.CreateNode(core.NodeSpec{
		Path: dir, Kind: names.KindObject,
		ACL:        acl.New(acl.AllowEveryone(acl.List | acl.Write)),
		Class:      bot,
		Multilevel: true,
	}); err != nil {
		return nil, err
	}
	m := &Manager{sys: sys, dir: dir, threads: make(map[int]*Thread)}

	if _, err := sys.CreateNode(core.NodeSpec{
		Path: ifacePath, Kind: names.KindInterface,
		ACL: acl.New(acl.AllowEveryone(acl.List)), Class: bot,
	}); err != nil {
		return nil, err
	}
	services := map[string]dispatch.Handler{
		"spawn": m.spawnHandler,
		"kill":  m.killHandler,
		"list":  m.listHandler,
	}
	for _, name := range []string{"spawn", "kill", "list"} {
		err := sys.RegisterService(core.ServiceSpec{
			Path: names.Join(ifacePath, name), ACL: svcACL, Class: bot,
			Base: dispatch.Binding{Owner: "threadsvc", Handler: services[name]},
		})
		if err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Spawn creates a thread owned by the calling principal. The thread
// node is protected so that only the owner may kill it under DAC, and
// the node carries the caller's class so MAC isolates compartments as
// well.
func (m *Manager) Spawn(ctx *subject.Context, name string) (*Thread, error) {
	m.mu.Lock()
	m.nextID++
	id := m.nextID
	m.mu.Unlock()

	t := &Thread{
		ID:    id,
		Name:  name,
		Owner: ctx.SubjectName(),
		Class: ctx.Class(),
		alive: true,
		done:  make(chan struct{}),
	}
	// Anyone may stat a thread (subject to MAC read-down); only the
	// owner may write (kill) or delete it.
	nodeACL := acl.New(
		acl.Allow(ctx.SubjectName(), acl.Write|acl.Delete),
		acl.AllowEveryone(acl.List|acl.Read),
	)
	_, err := m.sys.Bind(ctx, m.dir, names.BindSpec{
		Name: strconv.Itoa(id), Kind: names.KindObject,
		ACL: nodeACL, Class: ctx.Class(), Payload: t,
	})
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.threads[id] = t
	m.mu.Unlock()
	return t, nil
}

// Kill terminates the thread with the given ID on behalf of ctx.
// Killing is a write to the thread object: the caller needs write mode
// on the thread node and, under MAC, must not write down — a hostile
// applet cannot reach threads outside its compartment at all, and
// inside its compartment the ACL still names only the owner.
func (m *Manager) Kill(ctx *subject.Context, id int) error {
	path := names.Join(m.dir, strconv.Itoa(id))
	n, err := m.sys.CheckData(ctx, path, acl.Write)
	if err != nil {
		return err
	}
	t, ok := n.Payload().(*Thread)
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoThread, id)
	}
	if err := t.kill(ctx.SubjectName()); err != nil {
		return err
	}
	// Reap the node so the name space reflects liveness. The service
	// acts as the trusted reaper here, not the caller.
	return m.sys.Names().UnbindUnchecked(path)
}

// List returns the IDs of the threads whose nodes are visible to ctx,
// ascending. Visibility follows the name space: everyone sees the names
// (the directory is multilevel), but the returned set includes only
// threads whose nodes the caller may stat.
func (m *Manager) List(ctx *subject.Context) ([]int, error) {
	entries, err := m.sys.List(ctx, m.dir)
	if err != nil {
		return nil, err
	}
	ids := make([]int, 0, len(entries))
	for _, e := range entries {
		id, err := strconv.Atoi(e)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// Get returns the thread record for an ID if its node is readable by
// ctx.
func (m *Manager) Get(ctx *subject.Context, id int) (*Thread, error) {
	path := names.Join(m.dir, strconv.Itoa(id))
	n, err := m.sys.CheckData(ctx, path, acl.Read)
	if err != nil {
		return nil, err
	}
	t, ok := n.Payload().(*Thread)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoThread, id)
	}
	return t, nil
}

// Lookup returns a thread by ID with no access check (tests and the
// scenario harness use it to inspect outcomes).
func (m *Manager) Lookup(id int) (*Thread, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.threads[id]
	return t, ok
}

func (m *Manager) spawnHandler(ctx *subject.Context, arg any) (any, error) {
	r, ok := arg.(SpawnRequest)
	if !ok {
		return nil, fmt.Errorf("threadsvc: bad request type %T", arg)
	}
	t, err := m.Spawn(ctx, r.Name)
	if err != nil {
		return nil, err
	}
	return t.ID, nil
}

func (m *Manager) killHandler(ctx *subject.Context, arg any) (any, error) {
	r, ok := arg.(KillRequest)
	if !ok {
		return nil, fmt.Errorf("threadsvc: bad request type %T", arg)
	}
	return nil, m.Kill(ctx, r.ID)
}

func (m *Manager) listHandler(ctx *subject.Context, arg any) (any, error) {
	return m.List(ctx)
}
