package threadsvc

import (
	"errors"
	"testing"

	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/names"
	"secext/internal/subject"
)

type world struct {
	sys *core.System
	mgr *Manager
}

func newWorld(t *testing.T) *world {
	t.Helper()
	sys, err := core.NewSystem(core.Options{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CreateNode(core.NodeSpec{Path: "/svc", Kind: names.KindDomain,
		ACL: acl.New(acl.AllowEveryone(acl.List))}); err != nil {
		t.Fatal(err)
	}
	mgr, err := New(sys, "/threads", "/svc/thread",
		acl.New(acl.AllowEveryone(acl.Execute|acl.List)))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []struct{ name, class string }{
		{"user", "local:{dept-1,dept-2}"},
		{"applet1", "organization:{dept-1}"},
		{"applet2", "organization:{dept-1}"},
		{"applet3", "organization:{dept-2}"},
		{"murder", "organization:{dept-1}"},
	} {
		if _, err := sys.AddPrincipal(p.name, p.class); err != nil {
			t.Fatal(err)
		}
	}
	return &world{sys: sys, mgr: mgr}
}

func (w *world) ctx(t *testing.T, name string) *subject.Context {
	t.Helper()
	ctx, err := w.sys.NewContext(name)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestSpawnAndOwnKill(t *testing.T) {
	w := newWorld(t)
	a1 := w.ctx(t, "applet1")
	th, err := w.mgr.Spawn(a1, "worker")
	if err != nil {
		t.Fatalf("Spawn: %v", err)
	}
	if !th.Alive() || th.Owner != "applet1" {
		t.Errorf("thread state: %+v", th)
	}
	got, err := w.mgr.Get(a1, th.ID)
	if err != nil || got != th {
		t.Errorf("Get: %v %v", got, err)
	}
	if err := w.mgr.Kill(a1, th.ID); err != nil {
		t.Fatalf("own kill: %v", err)
	}
	if th.Alive() {
		t.Error("thread must be dead")
	}
	if th.KilledBy() != "applet1" {
		t.Errorf("KilledBy = %q", th.KilledBy())
	}
	select {
	case <-th.Done():
	default:
		t.Error("Done channel must be closed")
	}
	// Node is reaped.
	if err := w.mgr.Kill(a1, th.ID); !errors.Is(err, names.ErrNotFound) {
		t.Errorf("kill dead: got %v", err)
	}
}

func TestThreadMurderContained(t *testing.T) {
	// S2: the ThreadMurder applet (same compartment as applet1, same
	// class!) still cannot kill peers because the per-thread ACL names
	// only the owner; an applet in another compartment cannot even
	// touch the node under MAC.
	w := newWorld(t)
	victim1, err := w.mgr.Spawn(w.ctx(t, "applet1"), "v1")
	if err != nil {
		t.Fatal(err)
	}
	victim2, err := w.mgr.Spawn(w.ctx(t, "applet3"), "v2") // dept-2
	if err != nil {
		t.Fatal(err)
	}
	murder := w.ctx(t, "murder") // organization:{dept-1}
	ids, err := w.mgr.List(murder)
	if err != nil || len(ids) != 2 {
		t.Fatalf("List = %v, %v", ids, err)
	}
	killed := 0
	for _, id := range ids {
		if err := w.mgr.Kill(murder, id); err == nil {
			killed++
		} else if !core.IsDenied(err) {
			t.Errorf("kill %d: unexpected error %v", id, err)
		}
	}
	if killed != 0 {
		t.Fatalf("ThreadMurder killed %d threads; containment failed", killed)
	}
	if !victim1.Alive() || !victim2.Alive() {
		t.Error("victims must survive")
	}
	// The denials are on the audit trail.
	denied := w.sys.Audit().Stats().Denied
	if denied < 2 {
		t.Errorf("audited denials = %d, want >= 2", denied)
	}
}

func TestCrossCompartmentGetDenied(t *testing.T) {
	w := newWorld(t)
	th, err := w.mgr.Spawn(w.ctx(t, "applet1"), "v")
	if err != nil {
		t.Fatal(err)
	}
	// dept-2 applet cannot read a dept-1 thread even if ACL allowed it.
	if _, err := w.mgr.Get(w.ctx(t, "applet3"), th.ID); !core.IsDenied(err) {
		t.Errorf("cross-compartment get: got %v", err)
	}
}

func TestServicesEndpoints(t *testing.T) {
	w := newWorld(t)
	a1 := w.ctx(t, "applet1")
	out, err := w.sys.Call(a1, "/svc/thread/spawn", SpawnRequest{Name: "via-svc"})
	if err != nil {
		t.Fatalf("spawn via service: %v", err)
	}
	id := out.(int)
	ids, err := w.sys.Call(a1, "/svc/thread/list", nil)
	if err != nil || len(ids.([]int)) != 1 || ids.([]int)[0] != id {
		t.Fatalf("list via service = %v, %v", ids, err)
	}
	// Kill via service by a non-owner in the same compartment: denied.
	if _, err := w.sys.Call(w.ctx(t, "applet2"), "/svc/thread/kill", KillRequest{ID: id}); !core.IsDenied(err) {
		t.Errorf("non-owner kill via service: got %v", err)
	}
	if _, err := w.sys.Call(a1, "/svc/thread/kill", KillRequest{ID: id}); err != nil {
		t.Errorf("owner kill via service: %v", err)
	}
	// Bad request types.
	if _, err := w.sys.Call(a1, "/svc/thread/spawn", 3); err == nil {
		t.Error("bad spawn arg must fail")
	}
	if _, err := w.sys.Call(a1, "/svc/thread/kill", "x"); err == nil {
		t.Error("bad kill arg must fail")
	}
}

func TestUserDominatesApplets(t *testing.T) {
	// The local user (dominating class) may see applet threads but
	// still needs DAC write to kill: dominance alone is not authority
	// to destroy (and MAC write-down forbids it anyway).
	w := newWorld(t)
	th, err := w.mgr.Spawn(w.ctx(t, "applet1"), "v")
	if err != nil {
		t.Fatal(err)
	}
	user := w.ctx(t, "user")
	if _, err := w.mgr.Get(user, th.ID); err != nil {
		t.Errorf("user get (read down): %v", err)
	}
	if err := w.mgr.Kill(user, th.ID); !core.IsDenied(err) {
		t.Errorf("user kill (write down): got %v", err)
	}
}

func TestLookupAndDoubleKill(t *testing.T) {
	w := newWorld(t)
	a1 := w.ctx(t, "applet1")
	th, err := w.mgr.Spawn(a1, "v")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := w.mgr.Lookup(th.ID)
	if !ok || got != th {
		t.Error("Lookup")
	}
	if _, ok := w.mgr.Lookup(9999); ok {
		t.Error("Lookup missing id")
	}
	if err := th.kill("x"); err != nil {
		t.Fatal(err)
	}
	if err := th.kill("y"); !errors.Is(err, ErrDead) {
		t.Errorf("double kill: got %v", err)
	}
}
