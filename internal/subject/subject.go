// Package subject models the paper's subjects: threads of control that
// "function at the same security class as the associated principal"
// (§2.2). Go has no thread-local storage, so a Context value is passed
// explicitly along each chain of invocations; deriving a child context
// is how "the security class is passed on when another system service is
// invoked".
//
// A Context satisfies acl.Subject, so the same value drives both the
// discretionary and the mandatory decision.
package subject

import (
	"errors"
	"fmt"
	"sync/atomic"

	"secext/internal/lattice"
	"secext/internal/principal"
)

// Errors returned by context operations.
var (
	ErrNilPrincipal = errors.New("subject: nil principal")
	ErrBadClamp     = errors.New("subject: clamp class from different lattice")
	ErrTooDeep      = errors.New("subject: invocation chain too deep")
)

// MaxDepth bounds the invocation chain length; it exists to turn
// accidental dispatch recursion into a clean error instead of a stack
// overflow.
const MaxDepth = 256

// Context is one thread of control: the principal it acts for, its
// current (possibly clamped) security class, and its invocation chain.
// Contexts are immutable; Derive and Clamp return children.
type Context struct {
	prin   *principal.Principal
	class  lattice.Class
	parent *Context
	site   string // name-space path of the service this context entered
	depth  int

	// label memoizes the rendered form of class. A context's class is
	// immutable and the audit layer renders it on every mediated call, so
	// caching it keeps the hot path allocation-free after the first use.
	label atomic.Pointer[string]
}

// New creates a root context for a principal, running at the
// principal's own class.
func New(p *principal.Principal) (*Context, error) {
	if p == nil {
		return nil, ErrNilPrincipal
	}
	return &Context{prin: p, class: p.Class()}, nil
}

// MustNew is New but panics on error; for tests and bootstrap.
func MustNew(p *principal.Principal) *Context {
	c, err := New(p)
	if err != nil {
		panic(err)
	}
	return c
}

// Principal returns the principal this thread of control acts for.
func (c *Context) Principal() *principal.Principal { return c.prin }

// Class returns the context's current security class.
func (c *Context) Class() lattice.Class { return c.class }

// ClassLabel returns the rendered form of the context's class, computed
// once and memoized (contexts are immutable, so the label never changes).
func (c *Context) ClassLabel() string {
	if s := c.label.Load(); s != nil {
		return *s
	}
	s := c.class.String()
	c.label.Store(&s)
	return s
}

// Depth returns the length of the invocation chain (0 for a root).
func (c *Context) Depth() int { return c.depth }

// Parent returns the invoking context, or nil for a root.
func (c *Context) Parent() *Context { return c.parent }

// Site returns the name-space path this context entered ("" for roots).
func (c *Context) Site() string { return c.site }

// SubjectName implements acl.Subject.
func (c *Context) SubjectName() string { return c.prin.SubjectName() }

// MemberOf implements acl.Subject.
func (c *Context) MemberOf(group string) bool { return c.prin.MemberOf(group) }

// Derive creates the child context used to run the service at path
// site. If static is a valid class, the child's class is the meet of
// the caller's class and the static class — a statically assigned
// extension class can only ever shrink authority, never amplify it
// (§2.2). An invalid (zero) static leaves the class unchanged, i.e. the
// service runs at the caller's dynamic class.
func (c *Context) Derive(site string, static lattice.Class) (*Context, error) {
	if c.depth+1 > MaxDepth {
		return nil, fmt.Errorf("%w: %d frames", ErrTooDeep, c.depth+1)
	}
	class := c.class
	if static.Valid() {
		if static.Lattice() != c.class.Lattice() {
			return nil, ErrBadClamp
		}
		class = c.class.Meet(static)
	}
	return &Context{
		prin:   c.prin,
		class:  class,
		parent: c,
		site:   site,
		depth:  c.depth + 1,
	}, nil
}

// Clamp returns a child context whose class is the meet of the current
// class and limit, without recording an invocation site. It is how a
// caller voluntarily sheds authority before invoking less trusted code.
func (c *Context) Clamp(limit lattice.Class) (*Context, error) {
	if !limit.Valid() || limit.Lattice() != c.class.Lattice() {
		return nil, ErrBadClamp
	}
	return &Context{
		prin:   c.prin,
		class:  c.class.Meet(limit),
		parent: c.parent,
		site:   c.site,
		depth:  c.depth,
	}, nil
}

// Chain returns the invocation sites from the root to this context.
func (c *Context) Chain() []string {
	var sites []string
	for cur := c; cur != nil; cur = cur.parent {
		if cur.site != "" {
			sites = append(sites, cur.site)
		}
	}
	// Reverse to root-first order.
	for i, j := 0, len(sites)-1; i < j; i, j = i+1, j-1 {
		sites[i], sites[j] = sites[j], sites[i]
	}
	return sites
}

func (c *Context) String() string {
	return fmt.Sprintf("%s@%s depth=%d", c.prin.SubjectName(), c.class, c.depth)
}
