package subject

import (
	"errors"
	"strings"
	"testing"

	"secext/internal/lattice"
	"secext/internal/principal"
)

func newWorld(t *testing.T) (*lattice.Lattice, *principal.Registry) {
	t.Helper()
	lat, err := lattice.NewWithUniverse(
		[]string{"others", "organization", "local"},
		[]string{"myself", "dept-1", "dept-2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return lat, principal.NewRegistry(lat)
}

func TestNewContext(t *testing.T) {
	lat, reg := newWorld(t)
	alice, err := reg.AddPrincipal("alice", lat.MustClass("local", "myself"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := New(alice)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if ctx.Principal() != alice {
		t.Error("Principal accessor")
	}
	if !ctx.Class().Equal(alice.Class()) {
		t.Error("root context must run at principal class")
	}
	if ctx.Depth() != 0 || ctx.Parent() != nil || ctx.Site() != "" {
		t.Error("root context shape wrong")
	}
	if ctx.SubjectName() != "alice" {
		t.Errorf("SubjectName = %q", ctx.SubjectName())
	}
	if _, err := New(nil); !errors.Is(err, ErrNilPrincipal) {
		t.Errorf("New(nil): got %v", err)
	}
}

func TestMemberOfDelegates(t *testing.T) {
	lat, reg := newWorld(t)
	alice, _ := reg.AddPrincipal("alice", lat.MustClass("others"))
	if err := reg.AddGroup("staff"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddMember("staff", "alice"); err != nil {
		t.Fatal(err)
	}
	ctx := MustNew(alice)
	if !ctx.MemberOf("staff") || ctx.MemberOf("other") {
		t.Error("MemberOf must delegate to principal")
	}
}

func TestDeriveClampsWithStatic(t *testing.T) {
	lat, reg := newWorld(t)
	alice, _ := reg.AddPrincipal("alice", lat.MustClass("local", "myself", "dept-1"))
	ctx := MustNew(alice)
	static := lat.MustClass("organization", "dept-1", "dept-2")
	child, err := ctx.Derive("/svc/x", static)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	want := lat.MustClass("organization", "dept-1")
	if !child.Class().Equal(want) {
		t.Errorf("derived class = %s, want %s", child.Class(), want)
	}
	if child.Depth() != 1 || child.Parent() != ctx || child.Site() != "/svc/x" {
		t.Error("derived context chain wrong")
	}
	// Derivation must never amplify.
	if child.Class().Dominates(ctx.Class()) && !child.Class().Equal(ctx.Class()) {
		t.Error("derive amplified authority")
	}
}

func TestDeriveDynamic(t *testing.T) {
	lat, reg := newWorld(t)
	alice, _ := reg.AddPrincipal("alice", lat.MustClass("organization", "dept-1"))
	ctx := MustNew(alice)
	child, err := ctx.Derive("/svc/y", lattice.Class{})
	if err != nil {
		t.Fatalf("Derive dynamic: %v", err)
	}
	if !child.Class().Equal(ctx.Class()) {
		t.Error("dynamic derive must keep caller class")
	}
}

func TestDeriveForeignStatic(t *testing.T) {
	lat, reg := newWorld(t)
	alice, _ := reg.AddPrincipal("alice", lat.MustClass("others"))
	ctx := MustNew(alice)
	other, _ := lattice.NewWithUniverse([]string{"x"}, nil)
	if _, err := ctx.Derive("/s", other.MustClass("x")); !errors.Is(err, ErrBadClamp) {
		t.Errorf("foreign static: got %v", err)
	}
}

func TestDeriveDepthLimit(t *testing.T) {
	lat, reg := newWorld(t)
	alice, _ := reg.AddPrincipal("alice", lat.MustClass("others"))
	ctx := MustNew(alice)
	var err error
	for i := 0; i < MaxDepth; i++ {
		ctx, err = ctx.Derive("/s", lattice.Class{})
		if err != nil {
			t.Fatalf("derive %d: %v", i, err)
		}
	}
	if _, err = ctx.Derive("/s", lattice.Class{}); !errors.Is(err, ErrTooDeep) {
		t.Errorf("beyond MaxDepth: got %v", err)
	}
}

func TestClamp(t *testing.T) {
	lat, reg := newWorld(t)
	alice, _ := reg.AddPrincipal("alice", lat.MustClass("local", "myself", "dept-1"))
	ctx := MustNew(alice)
	clamped, err := ctx.Clamp(lat.MustClass("others"))
	if err != nil {
		t.Fatalf("Clamp: %v", err)
	}
	if clamped.Class().String() != "others" {
		t.Errorf("clamped class = %s", clamped.Class())
	}
	if clamped.Depth() != ctx.Depth() {
		t.Error("clamp must not extend the chain")
	}
	if _, err := ctx.Clamp(lattice.Class{}); !errors.Is(err, ErrBadClamp) {
		t.Errorf("zero clamp: got %v", err)
	}
}

func TestChainAndString(t *testing.T) {
	lat, reg := newWorld(t)
	alice, _ := reg.AddPrincipal("alice", lat.MustClass("local"))
	ctx := MustNew(alice)
	c1, _ := ctx.Derive("/svc/a", lattice.Class{})
	c2, _ := c1.Derive("/svc/b", lattice.Class{})
	chain := c2.Chain()
	if len(chain) != 2 || chain[0] != "/svc/a" || chain[1] != "/svc/b" {
		t.Errorf("Chain = %v", chain)
	}
	if got := ctx.Chain(); len(got) != 0 {
		t.Errorf("root Chain = %v", got)
	}
	s := c2.String()
	if !strings.Contains(s, "alice") || !strings.Contains(s, "depth=2") {
		t.Errorf("String = %q", s)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(nil) must panic")
		}
	}()
	MustNew(nil)
}
