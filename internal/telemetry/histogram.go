package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count of every latency histogram.
// Bucket 0 holds zero-duration observations; bucket b (b >= 1) holds
// durations in [2^(b-1), 2^b) nanoseconds, so 40 buckets cover up to
// ~2^39 ns ≈ 9 minutes — far beyond any mediation latency — with the
// last bucket absorbing anything larger.
const HistBuckets = 40

// Histogram is a lock-free, fixed-size, log-bucketed latency histogram.
// Observe performs two atomic adds and no allocation, so it is safe on
// the mediation path; Snapshot may run concurrently with writers. The
// zero Histogram is ready to use.
type Histogram struct {
	sum     atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns)) // 0 for 0ns, k for [2^(k-1), 2^k)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.buckets[b].Add(1)
	h.sum.Add(uint64(ns))
}

// HistSnapshot is a point-in-time view of a Histogram. Count is derived
// from the bucket values read by Snapshot, so Count always equals the
// sum of Buckets — the consistency contract concurrent readers rely on
// — and successive snapshots never see Count decrease (buckets only
// grow).
type HistSnapshot struct {
	Count   uint64              `json:"count"`
	SumNS   uint64              `json:"sum_ns"`
	P50     float64             `json:"p50_ns"`
	P95     float64             `json:"p95_ns"`
	P99     float64             `json:"p99_ns"`
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// Snapshot reads the histogram without stopping writers. An observation
// that lands mid-snapshot may or may not appear; what does appear is
// internally consistent (Count == Σ Buckets).
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.SumNS = h.sum.Load()
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Count += c
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// bucketBounds returns the value range [lo, hi) of bucket b in
// nanoseconds.
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (b - 1)), float64(uint64(1) << b)
}

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds by
// linear interpolation inside the covering bucket. An empty snapshot
// returns 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	cum := 0.0
	for b, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= target {
			lo, hi := bucketBounds(b)
			frac := (target - prev) / float64(c)
			return lo + frac*(hi-lo)
		}
	}
	_, hi := bucketBounds(HistBuckets - 1)
	return hi
}

// Mean returns the average observed duration in nanoseconds.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNS) / float64(s.Count)
}
