package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)                    // bucket 0
	h.Observe(1)                    // bucket 1: [1,2)
	h.Observe(3)                    // bucket 2: [2,4)
	h.Observe(1000)                 // bucket 10: [512,1024)
	h.Observe(-5 * time.Nanosecond) // clamps to 0 -> bucket 0
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.SumNS != 0+1+3+1000 {
		t.Fatalf("sum = %d, want 1004", s.SumNS)
	}
	for b, want := range map[int]uint64{0: 2, 1: 1, 2: 1, 10: 1} {
		if s.Buckets[b] != want {
			t.Errorf("bucket %d = %d, want %d", b, s.Buckets[b], want)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(1) << 50) // beyond the last bucket's range
	s := h.Snapshot()
	if s.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("overflow observation not in last bucket: %+v", s.Buckets)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 100 observations of ~1µs, 1 of ~1ms: p50 must sit in the µs
	// bucket, p99+ may reach the ms bucket.
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	h.Observe(time.Millisecond)
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 512 || p50 > 2048 {
		t.Errorf("p50 = %vns, want within the ~1µs bucket", p50)
	}
	if p999 := s.Quantile(0.9999); p999 < 512*1024 {
		t.Errorf("p99.99 = %vns, want in the ~1ms bucket", p999)
	}
	if m := s.Mean(); m < 1000 {
		t.Errorf("mean = %v, want >= 1000", m)
	}
}

// TestHistogramConcurrent drives parallel writers against a snapshot
// reader under the race detector, asserting the snapshot consistency
// contract: Count always equals the sum of Buckets, successive
// snapshots are monotone, and the final counts are exact.
func TestHistogramConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 5000
	)
	var h Histogram
	durations := []time.Duration{0, 100, 900, 70 * time.Microsecond, 3 * time.Millisecond}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prevCount uint64
		for {
			s := h.Snapshot()
			var bucketSum uint64
			for _, c := range s.Buckets {
				bucketSum += c
			}
			if s.Count != bucketSum {
				readerErr = errf("snapshot count %d != bucket sum %d", s.Count, bucketSum)
				return
			}
			if s.Count < prevCount {
				readerErr = errf("count went backwards: %d -> %d", prevCount, s.Count)
				return
			}
			prevCount = s.Count
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(durations[(seed+i)%len(durations)])
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}

	s := h.Snapshot()
	if want := uint64(writers * perWriter); s.Count != want {
		t.Fatalf("final count = %d, want %d", s.Count, want)
	}
	var expectSum uint64
	for i := 0; i < writers*perWriter; i++ {
		expectSum += uint64(durations[i%len(durations)].Nanoseconds())
	}
	// Each writer walks the durations cycle from its own offset; totals
	// across all writers cover the cycle uniformly, so the exact sum is
	// writers × (sum over perWriter entries starting anywhere) only
	// when perWriter is a multiple of the cycle length — it is.
	if perWriter%len(durations) == 0 {
		var cycle uint64
		for _, d := range durations {
			cycle += uint64(d.Nanoseconds())
		}
		want := cycle * uint64(writers) * uint64(perWriter/len(durations))
		if s.SumNS != want {
			t.Fatalf("final sum = %d, want %d", s.SumNS, want)
		}
	}
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
