package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// HTTPHandler returns the live introspection endpoints:
//
//	/metrics              Prometheus text format
//	/debug/stats          the full Snapshot as JSON
//	/debug/trace/recent   recent traces, JSON by default;
//	                      ?n=20 limits, ?denied=1 filters to denials,
//	                      ?text=1 renders one line per trace
//	/debug/epochs         epoch-transition journal, newest first;
//	                      ?n=20 limits, ?text=1 renders one line per
//	                      transition
//	/debug/explain        provenance re-evaluation of one decision;
//	                      ?subject=&path=&mode= required, JSON verdict
//	                      tree by default, ?text=1 renders it
//	/debug/replicas       replication status (per-peer lag, transfer
//	                      volume, barrier-wait distribution); JSON by
//	                      default, ?text=1 renders one line per peer
//
// Safe on a nil receiver: a disabled system still serves the endpoints
// (zero metrics, no traces), so dashboards never 404 on configuration.
func (t *Telemetry) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, t.Snapshot())
	})
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t.Snapshot())
	})
	mux.HandleFunc("/debug/trace/recent", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = parsed
		}
		denied := r.URL.Query().Get("denied") == "1"
		traces := t.Recent(n, denied)
		if r.URL.Query().Get("text") == "1" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, tr := range traces {
				fmt.Fprintln(w, tr.String())
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if traces == nil {
			traces = []Trace{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(traces)
	})
	mux.HandleFunc("/debug/epochs", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			parsed, err := strconv.Atoi(v)
			if err != nil || parsed < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = parsed
		}
		recs := t.EpochJournal(n)
		if r.URL.Query().Get("text") == "1" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, rec := range recs {
				fmt.Fprintln(w, rec.String())
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if recs == nil {
			recs = []EpochTransition{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(recs)
	})
	mux.HandleFunc("/debug/replicas", func(w http.ResponseWriter, r *http.Request) {
		stats, ok := t.Replication()
		if !ok {
			http.Error(w, "replication not enabled", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("text") == "1" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintf(w, "primary=v%d peers=%d snapshots=%d (%d gz) deltas=%d snapshot_bytes=%d snapshot_gz_bytes=%d delta_bytes=%d barrier_timeouts=%d\n",
				stats.PrimaryVersion, len(stats.Peers), stats.Snapshots, stats.SnapshotsGz, stats.Deltas,
				stats.SnapshotBytes, stats.SnapshotGzBytes, stats.DeltaBytes, stats.BarrierTimeouts)
			for _, p := range stats.Peers {
				fmt.Fprintf(w, "peer=%s acked=v%d lag=%d deltas=%d delta_bytes=%d snapshot_bytes=%d\n",
					p.Name, p.Acked, p.Lag, p.Deltas, p.DeltaBytes, p.SnapshotBytes)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(stats)
	})
	mux.HandleFunc("/debug/explain", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		subject, path, mode := q.Get("subject"), q.Get("path"), q.Get("mode")
		if subject == "" || path == "" || mode == "" {
			http.Error(w, "need subject=, path=, mode=", http.StatusBadRequest)
			return
		}
		text, jsonBody, err := t.Explain(subject, path, mode)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if q.Get("text") == "1" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, text)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(jsonBody)
	})
	return mux
}
