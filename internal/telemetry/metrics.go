package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the registry of counters and histograms. Counter updates
// are single atomic adds; the guard table is copy-on-write so the
// lookup on the (sampled) trace path is one atomic load plus a map
// read.
type metrics struct {
	// mediations holds one allowed and one denied counter per mediation
	// kind, flattened kind*2+verdict (verdict 0 = allowed).
	mediations []atomic.Uint64
	kinds      []string

	// mediationLat observes the end-to-end latency of sampled
	// mediations (the sampler bounds its cost; counts come from the
	// unsampled counters above).
	mediationLat Histogram

	admitAllowed atomic.Uint64
	admitDenied  atomic.Uint64

	// guards maps guard name -> *guardStat, copy-on-write under mu.
	guards atomic.Pointer[map[string]*guardStat]
	mu     sync.Mutex
}

// guardStat accumulates one guard's verdict counters and evaluation-
// time histogram. Fed from sampled traces only.
type guardStat struct {
	allowed atomic.Uint64
	denied  atomic.Uint64
	lat     Histogram
}

func (m *metrics) init(kinds []string) {
	m.kinds = append([]string(nil), kinds...)
	m.mediations = make([]atomic.Uint64, 2*len(kinds))
	empty := map[string]*guardStat{}
	m.guards.Store(&empty)
}

// mediation counts one mediated decision.
// admission counts one dispatcher admission decision.
func (m *metrics) admission(admitted bool) {
	if admitted {
		m.admitAllowed.Add(1)
	} else {
		m.admitDenied.Add(1)
	}
}

// guard returns the stat record for name, creating it on first use.
func (m *metrics) guard(name string) *guardStat {
	if g, ok := (*m.guards.Load())[name]; ok {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := *m.guards.Load()
	if g, ok := cur[name]; ok {
		return g
	}
	next := make(map[string]*guardStat, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	g := &guardStat{}
	next[name] = g
	m.guards.Store(&next)
	return g
}

// observeGuard records one sampled guard evaluation.
func (m *metrics) observeGuard(name string, allowed bool, d time.Duration) {
	g := m.guard(name)
	if allowed {
		g.allowed.Add(1)
	} else {
		g.denied.Add(1)
	}
	g.lat.Observe(d)
}

// MediationStat is the per-kind decision counters in a Snapshot.
type MediationStat struct {
	Kind    string `json:"kind"`
	Allowed uint64 `json:"allowed"`
	Denied  uint64 `json:"denied"`
}

// GuardStat is one guard's sampled counters and latency in a Snapshot.
type GuardStat struct {
	Name    string       `json:"name"`
	Allowed uint64       `json:"allowed"`
	Denied  uint64       `json:"denied"`
	Latency HistSnapshot `json:"latency"`
}

// CacheStats mirrors the decision cache's counters; the reference
// monitor wires the cache in via SetCacheStats so this package stays a
// leaf.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Stores        uint64 `json:"stores"`
	Invalidations uint64 `json:"invalidations"`
	Capacity      int    `json:"capacity"`
}

// NamesStats mirrors the name server's epoch counters: the version of
// the currently published policy epoch (the unified protection-state
// generation), the total number of epochs published since boot, and
// the per-shard breakdown of which kind of transition drove each
// publication.
type NamesStats struct {
	Version   uint64 `json:"version"`
	Publishes uint64 `json:"publishes"`
	// Typed epoch transitions: how many publications were driven by
	// name-tree mutations, lattice definitions, registry mutations,
	// and guard-stack changes respectively. With write combining one
	// publication can carry several shards, so these may sum to more
	// than Publishes.
	NameTransitions     uint64 `json:"name_transitions"`
	LatticeTransitions  uint64 `json:"lattice_transitions"`
	RegistryTransitions uint64 `json:"registry_transitions"`
	StackTransitions    uint64 `json:"stack_transitions"`
	// Write-combining publisher: mutations staged through batches, the
	// largest batch one flush published, and the batch-size and
	// flush-latency distributions. BatchSize reuses the histogram's
	// nanosecond buckets as plain counts (a "duration" of n ns is a
	// batch of n mutations).
	BatchedMutations uint64       `json:"batched_mutations"`
	MaxBatch         uint64       `json:"max_batch"`
	BatchSize        HistSnapshot `json:"batch_size"`
	FlushLatency     HistSnapshot `json:"flush_latency"`
	// Compiled epochs: how flushes obtained the read-side compilation
	// (full build / incremental patch / wholesale reuse), the current
	// epoch's compiled footprint, and the freeze-cost split (index
	// build vs ACL-summary compilation vs effective/visibility bitset
	// recomputation). CompiledRetainedBytes counts shared structures
	// once; CompiledRetainedBytesCloned prices every use site, the
	// upper bound structural sharing avoids.
	CompiledFull                uint64       `json:"compiled_full"`
	CompiledIncremental         uint64       `json:"compiled_incremental"`
	CompiledReused              uint64       `json:"compiled_reused"`
	CompiledEntries             int          `json:"compiled_entries"`
	CompiledDomClasses          int          `json:"compiled_dom_classes"`
	CompiledSensitive           int          `json:"compiled_sensitive"`
	CompiledRetainedBytes       int64        `json:"compiled_retained_bytes"`
	CompiledRetainedBytesCloned int64        `json:"compiled_retained_bytes_cloned"`
	CompiledIndexBuild          HistSnapshot `json:"compiled_index_build"`
	CompiledSummaryCompile      HistSnapshot `json:"compiled_summary_compile"`
	CompiledVisRecompute        HistSnapshot `json:"compiled_vis_recompute"`
	// Shadow divergence monitor: traced checks routed through both the
	// compiled fast path and the authoritative walk, and how many of
	// those comparisons disagreed (compiled=allow, walk=deny). A
	// nonzero divergence count is a correctness alarm.
	ShadowChecks uint64 `json:"shadow_checks"`
	Divergences  uint64 `json:"compiled_divergences"`
	// JournalRecords is the number of epoch-transition records the
	// journal ring currently retains.
	JournalRecords int `json:"journal_records"`
	// Footprint is the current epoch's tree-memory accounting plus the
	// server's intern-table counters (see FootprintStats).
	Footprint FootprintStats `json:"footprint"`
}

// FootprintStats mirrors the name server's per-epoch tree-memory
// accounting: what the published tree costs (node structs, child-slice
// backing arrays, path/name strings, distinct ACL values), how much of
// it is newly allocated versus structure-shared with the parent epoch,
// and the write-side intern tables that keep re-created strings and
// ACLs on canonical allocations. The server injects it through
// SetNamesStats so this package stays a leaf.
type FootprintStats struct {
	EpochVersion uint64 `json:"epoch_version"`

	Nodes       int `json:"nodes"`
	Leaves      int `json:"leaves"`
	Directories int `json:"directories"`
	OwnedNodes  int `json:"owned_nodes"`
	SharedNodes int `json:"shared_nodes"`

	ChildSlots      int   `json:"child_slots"`
	ChildSliceBytes int64 `json:"child_slice_bytes"`
	PathBytes       int64 `json:"path_bytes"`
	NameBytes       int64 `json:"name_bytes"`
	NodeStructBytes int64 `json:"node_struct_bytes"`

	ACLRefs       int     `json:"acl_refs"`
	DistinctACLs  int     `json:"distinct_acls"`
	ACLBytes      int64   `json:"acl_bytes"`
	ACLDedupRatio float64 `json:"acl_dedupe_ratio"`

	TotalBytes   int64   `json:"total_bytes"`
	BytesPerNode float64 `json:"bytes_per_node"`

	InternedStrings  int    `json:"interned_strings"`
	InternedBytes    int64  `json:"interned_bytes"`
	InternHits       uint64 `json:"intern_hits"`
	InternMisses     uint64 `json:"intern_misses"`
	InternResets     uint64 `json:"intern_resets"`
	ACLCanonDistinct uint64 `json:"acl_canon_distinct"`
	ACLCanonDedups   uint64 `json:"acl_canon_dedups"`
	ACLCanonResets   uint64 `json:"acl_canon_resets"`
}

// EpochTransition mirrors one record of the name server's
// epoch-transition journal: which shards a publication carried, how
// many staged mutations it coalesced, whether the freezes and the
// read-side compilation were incremental, and what the publish cost.
// The owner injects the journal via SetEpochJournal; this package
// stays a leaf.
type EpochTransition struct {
	Version           uint64    `json:"version"`
	Time              time.Time `json:"time"`
	Shards            []string  `json:"shards"`
	BatchSize         int       `json:"batch_size"`
	LatticeVersion    uint64    `json:"lattice_version"`
	LatticeDeltaBase  uint64    `json:"lattice_delta_base"`
	RegistryVersion   uint64    `json:"registry_version"`
	RegistryDeltaBase uint64    `json:"registry_delta_base"`
	IncrementalFreeze bool      `json:"incremental_freeze"`
	Compile           string    `json:"compile"`
	CompileNS         int64     `json:"compile_ns"`
	PublishNS         int64     `json:"publish_ns"`
	// Kind is empty for local publications, "replica" for epochs applied
	// from a replication stream, "replica-stale" for a replica's
	// fail-closed publication; PrimaryVersion is the primary epoch a
	// replication apply mirrors (zero for local publications).
	Kind           string `json:"kind,omitempty"`
	PrimaryVersion uint64 `json:"primary_version,omitempty"`
}

// String renders the transition as a one-line journal entry.
func (e EpochTransition) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch v%d %s shards=%s batch=%d",
		e.Version, e.Time.Format(time.RFC3339Nano), strings.Join(e.Shards, "+"), e.BatchSize)
	if e.RegistryVersion != 0 {
		freeze := "full"
		if e.IncrementalFreeze {
			freeze = fmt.Sprintf("incremental(from v%d)", e.RegistryDeltaBase)
		}
		fmt.Fprintf(&b, " registry=v%d freeze=%s", e.RegistryVersion, freeze)
	}
	if e.LatticeVersion != 0 {
		fmt.Fprintf(&b, " lattice=v%d", e.LatticeVersion)
	}
	fmt.Fprintf(&b, " compile=%s", e.Compile)
	if e.Compile != "none" && e.Compile != "reused" {
		fmt.Fprintf(&b, "(%s)", time.Duration(e.CompileNS))
	}
	fmt.Fprintf(&b, " publish=%s", time.Duration(e.PublishNS))
	if e.Kind != "" {
		fmt.Fprintf(&b, " kind=%s primary=v%d", e.Kind, e.PrimaryVersion)
	}
	return b.String()
}

// ReplicaPeerStat is one connected replica's lag view: the last primary
// epoch it acknowledged, how many epochs it trails the primary by, and
// the bytes streamed to it.
type ReplicaPeerStat struct {
	Name          string `json:"name"`
	Acked         uint64 `json:"acked"`
	Lag           uint64 `json:"lag"`
	SnapshotBytes uint64 `json:"snapshot_bytes"`
	DeltaBytes    uint64 `json:"delta_bytes"`
	Deltas        uint64 `json:"deltas"`
}

// ReplicationStats is the primary-side replication publisher's counter
// snapshot: per-peer lag, transfer volume by message kind, and the
// revocation-barrier wait distribution. The publisher injects it via
// SetReplication so this package stays a leaf.
type ReplicationStats struct {
	Peers          []ReplicaPeerStat `json:"peers"`
	PrimaryVersion uint64            `json:"primary_version"`
	Snapshots      uint64            `json:"snapshots"`
	// SnapshotsGz counts the snapshots that went out gzip-compressed
	// (protocol >= 3 subscribers); SnapshotBytes always accumulates the
	// raw JSON size, SnapshotGzBytes the compressed wire size of the
	// compressed ones, so gz_bytes / raw bytes is the observed ratio.
	SnapshotsGz     uint64       `json:"snapshots_gz"`
	Deltas          uint64       `json:"deltas"`
	SnapshotBytes   uint64       `json:"snapshot_bytes"`
	SnapshotGzBytes uint64       `json:"snapshot_gz_bytes"`
	DeltaBytes      uint64       `json:"delta_bytes"`
	BarrierTimeouts uint64       `json:"barrier_timeouts"`
	BarrierWait     HistSnapshot `json:"barrier_wait"`
}

// AuditStats mirrors the audit log's counters, including ring drops
// (events overwritten before ever being read out).
type AuditStats struct {
	Total    uint64 `json:"total"`
	Allowed  uint64 `json:"allowed"`
	Denied   uint64 `json:"denied"`
	Bypassed uint64 `json:"bypassed"`
	Dropped  uint64 `json:"dropped"`
}

// AdmissionStats counts dispatcher admission decisions.
type AdmissionStats struct {
	Allowed uint64 `json:"allowed"`
	Denied  uint64 `json:"denied"`
}

// Snapshot is a consistent-enough point-in-time view of every metric:
// counters are read once each, histograms satisfy Count == Σ Buckets,
// and successive snapshots are monotone.
type Snapshot struct {
	Mode             string          `json:"mode"`
	SampleEvery      int             `json:"sample_every"`
	Mediations       []MediationStat `json:"mediations"`
	MediationLatency HistSnapshot    `json:"mediation_latency"`
	Guards           []GuardStat     `json:"guards"`
	Cache            CacheStats      `json:"cache"`
	Audit            AuditStats      `json:"audit"`
	Names            NamesStats      `json:"names"`
	Admissions       AdmissionStats  `json:"admissions"`
	TracesSampled    uint64          `json:"traces_sampled"`
	// Replication is present only on a primary with a replication
	// publisher attached (SetReplication).
	Replication *ReplicationStats `json:"replication,omitempty"`
}

// Mediated returns the total decision counts across kinds.
func (s Snapshot) Mediated() (allowed, denied uint64) {
	for _, m := range s.Mediations {
		allowed += m.Allowed
		denied += m.Denied
	}
	return allowed, denied
}

func (m *metrics) snapshot() (meds []MediationStat, lat HistSnapshot, guards []GuardStat, adm AdmissionStats) {
	meds = make([]MediationStat, len(m.kinds))
	for i, k := range m.kinds {
		meds[i] = MediationStat{
			Kind:    k,
			Allowed: m.mediations[2*i].Load(),
			Denied:  m.mediations[2*i+1].Load(),
		}
	}
	lat = m.mediationLat.Snapshot()
	cur := *m.guards.Load()
	guards = make([]GuardStat, 0, len(cur))
	for name, g := range cur {
		guards = append(guards, GuardStat{
			Name:    name,
			Allowed: g.allowed.Load(),
			Denied:  g.denied.Load(),
			Latency: g.lat.Snapshot(),
		})
	}
	sort.Slice(guards, func(i, j int) bool { return guards[i].Name < guards[j].Name })
	adm = AdmissionStats{Allowed: m.admitAllowed.Load(), Denied: m.admitDenied.Load()}
	return meds, lat, guards, adm
}
