package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteProm renders a snapshot in the Prometheus text exposition format
// (version 0.0.4) using only the standard library. Histograms are
// emitted with cumulative log-2 buckets in seconds, trimmed past the
// last occupied bucket to keep the page readable.
func WriteProm(w io.Writer, s Snapshot) error {
	ew := &errWriter{w: w}

	ew.printf("# HELP secext_mediations_total Mediated access decisions by kind and verdict.\n")
	ew.printf("# TYPE secext_mediations_total counter\n")
	for _, m := range s.Mediations {
		ew.printf("secext_mediations_total{kind=%s,verdict=\"allowed\"} %d\n", promQuote(m.Kind), m.Allowed)
		ew.printf("secext_mediations_total{kind=%s,verdict=\"denied\"} %d\n", promQuote(m.Kind), m.Denied)
	}

	ew.printf("# HELP secext_decision_cache_hits_total Decision-cache lookups served from cache.\n")
	ew.printf("# TYPE secext_decision_cache_hits_total counter\n")
	ew.printf("secext_decision_cache_hits_total %d\n", s.Cache.Hits)
	ew.printf("# HELP secext_decision_cache_misses_total Decision-cache lookups that took the full check.\n")
	ew.printf("# TYPE secext_decision_cache_misses_total counter\n")
	ew.printf("secext_decision_cache_misses_total %d\n", s.Cache.Misses)
	ew.printf("# HELP secext_decision_cache_invalidations_total Protection-state generation bumps.\n")
	ew.printf("# TYPE secext_decision_cache_invalidations_total counter\n")
	ew.printf("secext_decision_cache_invalidations_total %d\n", s.Cache.Invalidations)
	ew.printf("# HELP secext_decision_cache_stores_total Verdicts published into the decision cache.\n")
	ew.printf("# TYPE secext_decision_cache_stores_total counter\n")
	ew.printf("secext_decision_cache_stores_total %d\n", s.Cache.Stores)

	ew.printf("# HELP secext_epoch_version Version of the currently published policy epoch (name tree + lattice + registry + guard stack).\n")
	ew.printf("# TYPE secext_epoch_version gauge\n")
	ew.printf("secext_epoch_version %d\n", s.Names.Version)
	ew.printf("# HELP secext_names_snapshot_version Version of the currently published name-space snapshot (alias of secext_epoch_version).\n")
	ew.printf("# TYPE secext_names_snapshot_version gauge\n")
	ew.printf("secext_names_snapshot_version %d\n", s.Names.Version)
	ew.printf("# HELP secext_names_publishes_total Policy epochs published since boot.\n")
	ew.printf("# TYPE secext_names_publishes_total counter\n")
	ew.printf("secext_names_publishes_total %d\n", s.Names.Publishes)
	ew.printf("# HELP secext_epoch_transitions_total Policy-epoch publications by the shard whose change drove them.\n")
	ew.printf("# TYPE secext_epoch_transitions_total counter\n")
	ew.printf("secext_epoch_transitions_total{shard=\"names\"} %d\n", s.Names.NameTransitions)
	ew.printf("secext_epoch_transitions_total{shard=\"lattice\"} %d\n", s.Names.LatticeTransitions)
	ew.printf("secext_epoch_transitions_total{shard=\"registry\"} %d\n", s.Names.RegistryTransitions)
	ew.printf("secext_epoch_transitions_total{shard=\"stack\"} %d\n", s.Names.StackTransitions)
	ew.printf("# HELP secext_epoch_batched_mutations_total Mutations staged through the write-combining epoch publisher.\n")
	ew.printf("# TYPE secext_epoch_batched_mutations_total counter\n")
	ew.printf("secext_epoch_batched_mutations_total %d\n", s.Names.BatchedMutations)
	ew.printf("# HELP secext_epoch_max_batch Largest number of mutations one epoch publication carried.\n")
	ew.printf("# TYPE secext_epoch_max_batch gauge\n")
	ew.printf("secext_epoch_max_batch %d\n", s.Names.MaxBatch)

	ew.printf("# HELP secext_epoch_index_incremental_total Compiled-epoch builds patched incrementally from the parent epoch's index.\n")
	ew.printf("# TYPE secext_epoch_index_incremental_total counter\n")
	ew.printf("secext_epoch_index_incremental_total %d\n", s.Names.CompiledIncremental)
	ew.printf("# HELP secext_epoch_index_full_total Compiled-epoch builds rebuilt from scratch.\n")
	ew.printf("# TYPE secext_epoch_index_full_total counter\n")
	ew.printf("secext_epoch_index_full_total %d\n", s.Names.CompiledFull)
	ew.printf("# HELP secext_epoch_index_reused_total Flushes that reused the parent epoch's compiled view wholesale.\n")
	ew.printf("# TYPE secext_epoch_index_reused_total counter\n")
	ew.printf("secext_epoch_index_reused_total %d\n", s.Names.CompiledReused)
	ew.printf("# HELP secext_epoch_index_entries Path index entries in the current epoch's compiled view.\n")
	ew.printf("# TYPE secext_epoch_index_entries gauge\n")
	ew.printf("secext_epoch_index_entries %d\n", s.Names.CompiledEntries)
	ew.printf("# HELP secext_epoch_compiled_retained_bytes Heap bytes the current epoch's compiled view retains, shared structures counted once (label deduped=\"false\" prices every use site).\n")
	ew.printf("# TYPE secext_epoch_compiled_retained_bytes gauge\n")
	ew.printf("secext_epoch_compiled_retained_bytes{deduped=\"true\"} %d\n", s.Names.CompiledRetainedBytes)
	ew.printf("secext_epoch_compiled_retained_bytes{deduped=\"false\"} %d\n", s.Names.CompiledRetainedBytesCloned)

	ew.printf("# HELP secext_compiled_shadow_checks_total Sampled checks routed through both the compiled fast path and the authoritative walk.\n")
	ew.printf("# TYPE secext_compiled_shadow_checks_total counter\n")
	ew.printf("secext_compiled_shadow_checks_total %d\n", s.Names.ShadowChecks)
	ew.printf("# HELP secext_compiled_divergence_total Shadow comparisons where the compiled verdict diverged from the walk (correctness alarm; the walk's verdict was enforced).\n")
	ew.printf("# TYPE secext_compiled_divergence_total counter\n")
	ew.printf("secext_compiled_divergence_total %d\n", s.Names.Divergences)
	ew.printf("# HELP secext_epoch_journal_records Epoch-transition records currently retained in the journal ring.\n")
	ew.printf("# TYPE secext_epoch_journal_records gauge\n")
	ew.printf("secext_epoch_journal_records %d\n", s.Names.JournalRecords)

	fp := s.Names.Footprint
	ew.printf("# HELP secext_epoch_footprint_nodes Nodes in the current epoch's name tree by role.\n")
	ew.printf("# TYPE secext_epoch_footprint_nodes gauge\n")
	ew.printf("secext_epoch_footprint_nodes{role=\"all\"} %d\n", fp.Nodes)
	ew.printf("secext_epoch_footprint_nodes{role=\"leaf\"} %d\n", fp.Leaves)
	ew.printf("secext_epoch_footprint_nodes{role=\"directory\"} %d\n", fp.Directories)
	ew.printf("# HELP secext_epoch_footprint_sharing Nodes newly allocated by the current epoch's publication versus pointer-shared with the parent epoch.\n")
	ew.printf("# TYPE secext_epoch_footprint_sharing gauge\n")
	ew.printf("secext_epoch_footprint_sharing{nodes=\"owned\"} %d\n", fp.OwnedNodes)
	ew.printf("secext_epoch_footprint_sharing{nodes=\"shared\"} %d\n", fp.SharedNodes)
	ew.printf("# HELP secext_epoch_footprint_bytes Estimated heap bytes the current epoch's tree retains, by component.\n")
	ew.printf("# TYPE secext_epoch_footprint_bytes gauge\n")
	ew.printf("secext_epoch_footprint_bytes{component=\"node_structs\"} %d\n", fp.NodeStructBytes)
	ew.printf("secext_epoch_footprint_bytes{component=\"child_slices\"} %d\n", fp.ChildSliceBytes)
	ew.printf("secext_epoch_footprint_bytes{component=\"paths\"} %d\n", fp.PathBytes)
	ew.printf("secext_epoch_footprint_bytes{component=\"names\"} %d\n", fp.NameBytes)
	ew.printf("secext_epoch_footprint_bytes{component=\"acls\"} %d\n", fp.ACLBytes)
	ew.printf("secext_epoch_footprint_bytes{component=\"total\"} %d\n", fp.TotalBytes)
	ew.printf("# HELP secext_epoch_footprint_bytes_per_node Estimated tree bytes per node in the current epoch.\n")
	ew.printf("# TYPE secext_epoch_footprint_bytes_per_node gauge\n")
	ew.printf("secext_epoch_footprint_bytes_per_node %g\n", fp.BytesPerNode)
	ew.printf("# HELP secext_epoch_footprint_acl_dedupe_ratio ACL references per distinct ACL value in the current epoch's tree.\n")
	ew.printf("# TYPE secext_epoch_footprint_acl_dedupe_ratio gauge\n")
	ew.printf("secext_epoch_footprint_acl_dedupe_ratio %g\n", fp.ACLDedupRatio)
	ew.printf("# HELP secext_interner_strings Canonical strings currently held by the server's path interner.\n")
	ew.printf("# TYPE secext_interner_strings gauge\n")
	ew.printf("secext_interner_strings %d\n", fp.InternedStrings)
	ew.printf("# HELP secext_interner_bytes Unique bytes currently held by the server's path interner.\n")
	ew.printf("# TYPE secext_interner_bytes gauge\n")
	ew.printf("secext_interner_bytes %d\n", fp.InternedBytes)
	ew.printf("# HELP secext_interner_lookups_total Path-interner lookups by outcome.\n")
	ew.printf("# TYPE secext_interner_lookups_total counter\n")
	ew.printf("secext_interner_lookups_total{outcome=\"hit\"} %d\n", fp.InternHits)
	ew.printf("secext_interner_lookups_total{outcome=\"miss\"} %d\n", fp.InternMisses)
	ew.printf("# HELP secext_interner_resets_total Wholesale intern-table resets after hitting the size cap (interner plus ACL table).\n")
	ew.printf("# TYPE secext_interner_resets_total counter\n")
	ew.printf("secext_interner_resets_total{table=\"paths\"} %d\n", fp.InternResets)
	ew.printf("secext_interner_resets_total{table=\"acls\"} %d\n", fp.ACLCanonResets)
	ew.printf("# HELP secext_acl_canon_dedups_total Fresh ACLs deduplicated onto an existing canonical value.\n")
	ew.printf("# TYPE secext_acl_canon_dedups_total counter\n")
	ew.printf("secext_acl_canon_dedups_total %d\n", fp.ACLCanonDedups)

	ew.printf("# HELP secext_audit_events_total Audit log decisions by verdict, plus mediation bypasses.\n")
	ew.printf("# TYPE secext_audit_events_total counter\n")
	ew.printf("secext_audit_events_total{verdict=\"allowed\"} %d\n", s.Audit.Allowed)
	ew.printf("secext_audit_events_total{verdict=\"denied\"} %d\n", s.Audit.Denied)
	ew.printf("secext_audit_events_total{verdict=\"bypassed\"} %d\n", s.Audit.Bypassed)
	ew.printf("# HELP secext_audit_ring_dropped_total Audit events overwritten in the bounded ring.\n")
	ew.printf("# TYPE secext_audit_ring_dropped_total counter\n")
	ew.printf("secext_audit_ring_dropped_total %d\n", s.Audit.Dropped)

	ew.printf("# HELP secext_dispatch_admissions_total Dispatcher admission decisions.\n")
	ew.printf("# TYPE secext_dispatch_admissions_total counter\n")
	ew.printf("secext_dispatch_admissions_total{verdict=\"admitted\"} %d\n", s.Admissions.Allowed)
	ew.printf("secext_dispatch_admissions_total{verdict=\"rejected\"} %d\n", s.Admissions.Denied)

	ew.printf("# HELP secext_traces_sampled_total Mediations selected by the trace sampler.\n")
	ew.printf("# TYPE secext_traces_sampled_total counter\n")
	ew.printf("secext_traces_sampled_total %d\n", s.TracesSampled)

	writePromHist(ew, "secext_mediation_seconds",
		"End-to-end mediation latency (sampled).", "", s.MediationLatency)
	writePromHistWith(ew, "secext_epoch_batch_size",
		"Mutations coalesced into one epoch publication.", "",
		s.Names.BatchSize, formatCount)
	writePromHist(ew, "secext_epoch_flush_seconds",
		"Latency from first staged mutation to epoch publication.", "",
		s.Names.FlushLatency)
	writePromHist(ew, "secext_epoch_compile_index_seconds",
		"Per-flush compiled-epoch index build time (walk, map clone, dominance interning).", "",
		s.Names.CompiledIndexBuild)
	writePromHist(ew, "secext_epoch_compile_summary_seconds",
		"Per-flush ACL-summary compilation time within compiled-epoch builds.", "",
		s.Names.CompiledSummaryCompile)
	writePromHist(ew, "secext_epoch_compile_bitset_seconds",
		"Per-flush effective/visibility bitset recomputation time within compiled-epoch builds.", "",
		s.Names.CompiledVisRecompute)
	for _, g := range s.Guards {
		writePromHist(ew, "secext_guard_eval_seconds",
			"Per-guard evaluation latency (sampled).",
			"guard="+promQuote(g.Name), g.Latency)
	}

	if s.Replication != nil {
		r := s.Replication
		ew.printf("# HELP secext_replica_primary_version Primary epoch version the publisher is streaming.\n")
		ew.printf("# TYPE secext_replica_primary_version gauge\n")
		ew.printf("secext_replica_primary_version %d\n", r.PrimaryVersion)
		ew.printf("# HELP secext_replica_peers Currently subscribed replica peers.\n")
		ew.printf("# TYPE secext_replica_peers gauge\n")
		ew.printf("secext_replica_peers %d\n", len(r.Peers))
		ew.printf("# HELP secext_replica_lag Epochs a peer trails the primary by (primary version minus last acked).\n")
		ew.printf("# TYPE secext_replica_lag gauge\n")
		for _, p := range r.Peers {
			ew.printf("secext_replica_lag{peer=%s} %d\n", promQuote(p.Name), p.Lag)
		}
		ew.printf("# HELP secext_replica_messages_total Replication messages sent by kind.\n")
		ew.printf("# TYPE secext_replica_messages_total counter\n")
		ew.printf("secext_replica_messages_total{kind=\"snapshot\"} %d\n", r.Snapshots)
		ew.printf("secext_replica_messages_total{kind=\"snapshot_gz\"} %d\n", r.SnapshotsGz)
		ew.printf("secext_replica_messages_total{kind=\"delta\"} %d\n", r.Deltas)
		ew.printf("# HELP secext_replica_bytes_total Replication payload bytes by kind: snapshot is the raw JSON size of every snapshot, snapshot_gz the compressed wire size of those sent gzipped (protocol >= 3), delta the delta stream.\n")
		ew.printf("# TYPE secext_replica_bytes_total counter\n")
		ew.printf("secext_replica_bytes_total{kind=\"snapshot\"} %d\n", r.SnapshotBytes)
		ew.printf("secext_replica_bytes_total{kind=\"snapshot_gz\"} %d\n", r.SnapshotGzBytes)
		ew.printf("secext_replica_bytes_total{kind=\"delta\"} %d\n", r.DeltaBytes)
		ew.printf("# HELP secext_replica_barrier_timeouts_total Revocation barriers that timed out before the fleet acked.\n")
		ew.printf("# TYPE secext_replica_barrier_timeouts_total counter\n")
		ew.printf("secext_replica_barrier_timeouts_total %d\n", r.BarrierTimeouts)
		writePromHist(ew, "secext_replica_barrier_wait_seconds",
			"Time revocation barriers waited for fleet-wide acknowledgment.", "",
			r.BarrierWait)
	}
	return ew.err
}

// writePromHist emits one histogram metric family with bucket bounds
// and sum rendered as seconds; labels is either "" or a rendered
// `name="value"` list without braces.
func writePromHist(ew *errWriter, name, help, labels string, h HistSnapshot) {
	writePromHistWith(ew, name, help, labels, h, formatSeconds)
}

// writePromHistWith is writePromHist with an explicit value formatter,
// so histograms that reuse the nanosecond buckets for unitless counts
// (e.g. batch sizes) can render raw bucket bounds instead of seconds.
func writePromHistWith(ew *errWriter, name, help, labels string, h HistSnapshot, format func(float64) string) {
	ew.printf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	last := 0
	for i, c := range h.Buckets {
		if c > 0 {
			last = i
		}
	}
	cum := uint64(0)
	for b := 0; b <= last; b++ {
		cum += h.Buckets[b]
		_, hi := bucketBounds(b)
		ew.printf("%s_bucket{%s} %d\n", name, promLabels(labels, "le", format(hi)), cum)
	}
	ew.printf("%s_bucket{%s} %d\n", name, promLabels(labels, "le", "+Inf"), h.Count)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	ew.printf("%s_sum%s %s\n", name, labels, format(float64(h.SumNS)))
	ew.printf("%s_count%s %d\n", name, labels, h.Count)
}

// promLabels joins an optional pre-rendered label list with one more
// label pair.
func promLabels(labels, k, v string) string {
	pair := k + "=" + promQuote(v)
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

// promQuote renders a label value per the Prometheus text exposition
// format (0.0.4): backslash, double quote, and line feed are escaped
// as \\, \", and \n; every other byte — UTF-8 sequences included —
// passes through literally. strconv.Quote is NOT a substitute: it
// emits Go-style escapes (\t, \xNN, \uNNNN) the exposition format
// does not define, which scrapers would ingest as literal backslash
// sequences or reject.
func promQuote(v string) string {
	var b strings.Builder
	b.Grow(len(v) + 2)
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// formatSeconds renders a nanosecond quantity as seconds.
func formatSeconds(ns float64) string {
	return strconv.FormatFloat(ns/1e9, 'g', -1, 64)
}

// formatCount renders a bucket bound as a raw (unitless) number, for
// histograms whose nanosecond buckets actually hold counts.
func formatCount(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
