// Package telemetry is the observability layer of the reference
// monitor: decision traces, per-stage metrics, and the snapshots behind
// the live introspection endpoints.
//
// The paper (§1) lists auditing among the system-security aspects its
// access-control model must integrate with; the audit log answers
// *what* was decided, this package answers *where the decision spent
// its time* and *which policy stage decided it*. Three pieces:
//
//   - Decision traces: a sampled per-request trace recording structured
//     spans for the decision-cache probe (hit/miss plus generation), the
//     name-space resolve, and each guard's verdict and duration, ending
//     in the final verdict correlated with the audit sequence number.
//     Completed traces land in a fixed ring; Recent reads them back and
//     Trace.String renders the one-line forensics form.
//
//   - Metrics: atomic counters (mediations by kind and verdict, cache
//     and audit statistics, dispatcher admissions) and lock-free
//     log-bucketed latency histograms (end-to-end mediation time,
//     per-guard evaluation time) with a snapshot API that reports
//     p50/p95/p99.
//
//   - Exposure: WriteProm renders a snapshot in Prometheus text format
//     and HTTPHandler serves /metrics, /debug/stats, and
//     /debug/trace/recent, all with no dependencies outside the
//     standard library.
//
// Cost discipline: an unsampled mediation pays one atomic add (its
// decision counter — which doubles as the sampling clock: every
// SampleEvery-th count arms a flag) plus one plain atomic load (the
// flag check), and zero allocations; latency histograms are fed by the
// sampler, so timestamps are read only on sampled requests. A nil
// *Telemetry is a valid no-op on every method, so disabled telemetry
// costs one predictable branch per site.
package telemetry

import (
	"errors"
	"math/bits"
	"sync/atomic"
	"time"
)

// Mode selects how much the telemetry layer records.
type Mode int

const (
	// ModeSampled is the default (and the zero value): all counters,
	// with traces and latency histograms fed from one mediation in
	// every SampleEvery.
	ModeSampled Mode = iota
	// ModeOff records nothing; the reference monitor does not even
	// construct a Telemetry for it.
	ModeOff
	// ModeMetrics keeps counters and sampled latency histograms but
	// retains no trace objects.
	ModeMetrics
	// ModeFull traces every mediation — maximum forensics, priced by
	// E13.
	ModeFull
)

var modeNames = map[Mode]string{
	ModeSampled: "sampled", ModeOff: "off", ModeMetrics: "metrics", ModeFull: "full",
}

func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return "mode?"
}

// ParseMode resolves a mode name ("off", "metrics", "sampled", "full").
func ParseMode(s string) (Mode, bool) {
	for m, name := range modeNames {
		if name == s {
			return m, true
		}
	}
	return ModeOff, false
}

// Options configure New.
type Options struct {
	// Mode selects the recording level; the zero value is ModeSampled
	// (metrics on, traces sampled), the production default.
	Mode Mode
	// SampleEvery traces roughly one mediation in this many (default
	// 256; values <= 1 trace everything; rounded up to a power of two).
	// Ignored under ModeFull.
	SampleEvery int
	// TraceCapacity bounds the completed-trace ring (default 256).
	TraceCapacity int
	// Kinds names the mediation kinds for the per-kind counters,
	// indexed by the kind value passed to Mediation.
	Kinds []string
}

// Telemetry is the observability registry one reference monitor owns.
// All methods are safe for concurrent use and safe on a nil receiver
// (recording nothing), so callers never branch on configuration.
type Telemetry struct {
	mode        Mode
	sampleEvery uint64
	sampleMask  uint64
	metrics     metrics

	// sampleFlag is armed by Mediation whenever a per-kind decision
	// counter crosses a multiple of sampleEvery and consumed (CAS) by
	// the next StartTrace. The arming test rides the counter add the
	// decision pays anyway, so the steady-state sampling cost is one
	// plain atomic load per mediation.
	sampleFlag atomic.Bool
	traceID    atomic.Uint64
	sampled    atomic.Uint64

	ring    []atomic.Pointer[Trace]
	ringPos atomic.Uint64

	// cacheStats, auditStats, and namesStats, when wired, pull the
	// decision cache's, audit log's, and name server's own counters into
	// snapshots; this package stays a leaf, so the owners inject them as
	// plain functions.
	cacheStats atomic.Pointer[func() CacheStats]
	auditStats atomic.Pointer[func() AuditStats]
	namesStats atomic.Pointer[func() NamesStats]

	// epochJournal, when wired, snapshots the name server's
	// epoch-transition journal (newest first, n <= 0 for all), and
	// explain runs a provenance re-evaluation for the HTTP and remote
	// introspection surfaces. Injected as plain functions for the same
	// leaf-package reason as the stat hooks above.
	epochJournal atomic.Pointer[func(n int) []EpochTransition]
	explain      atomic.Pointer[func(subject, path, modes string) (string, []byte, error)]

	// replication, when wired, snapshots the replication publisher's
	// per-peer lag and transfer counters (primary side only).
	replication atomic.Pointer[func() ReplicationStats]
}

// New builds a telemetry registry. ModeOff returns nil — the nil
// receiver is the disabled implementation.
func New(opts Options) *Telemetry {
	if opts.Mode == ModeOff {
		return nil
	}
	every := opts.SampleEvery
	if every == 0 {
		every = 256
	}
	if every < 1 || opts.Mode == ModeFull {
		every = 1
	}
	if every > 1 {
		// Power of two, so the arming test is a mask, not a division.
		every = 1 << bits.Len64(uint64(every-1))
	}
	capacity := opts.TraceCapacity
	if capacity <= 0 {
		capacity = 256
	}
	t := &Telemetry{
		mode:        opts.Mode,
		sampleEvery: uint64(every),
		sampleMask:  uint64(every - 1),
		ring:        make([]atomic.Pointer[Trace], capacity),
	}
	// Arm the first mediation, so a freshly booted system has a trace
	// (and /metrics has latency series) after one request.
	t.sampleFlag.Store(true)
	t.metrics.init(opts.Kinds)
	return t
}

// Mode reports the recording level ("off" on nil).
func (t *Telemetry) Mode() Mode {
	if t == nil {
		return ModeOff
	}
	return t.mode
}

// SetCacheStats wires the decision cache's counter snapshot into
// Snapshot; nil detaches it.
func (t *Telemetry) SetCacheStats(fn func() CacheStats) {
	if t == nil {
		return
	}
	if fn == nil {
		t.cacheStats.Store(nil)
		return
	}
	t.cacheStats.Store(&fn)
}

// SetNamesStats wires the name server's snapshot-version gauge and
// publish counter into Snapshot; nil detaches it.
func (t *Telemetry) SetNamesStats(fn func() NamesStats) {
	if t == nil {
		return
	}
	if fn == nil {
		t.namesStats.Store(nil)
		return
	}
	t.namesStats.Store(&fn)
}

// SetAuditStats wires the audit log's counter snapshot into Snapshot;
// nil detaches it.
func (t *Telemetry) SetAuditStats(fn func() AuditStats) {
	if t == nil {
		return
	}
	if fn == nil {
		t.auditStats.Store(nil)
		return
	}
	t.auditStats.Store(&fn)
}

// SetEpochJournal wires the name server's epoch-transition journal
// snapshot into the introspection endpoints; nil detaches it.
func (t *Telemetry) SetEpochJournal(fn func(n int) []EpochTransition) {
	if t == nil {
		return
	}
	if fn == nil {
		t.epochJournal.Store(nil)
		return
	}
	t.epochJournal.Store(&fn)
}

// EpochJournal returns up to n epoch-transition records, newest first
// (n <= 0 for all retained); nil when no journal is wired or the
// receiver is nil.
func (t *Telemetry) EpochJournal(n int) []EpochTransition {
	if t == nil {
		return nil
	}
	fn := t.epochJournal.Load()
	if fn == nil {
		return nil
	}
	return (*fn)(n)
}

// SetReplication wires the replication publisher's counter snapshot
// into Snapshot and the introspection endpoints; nil detaches it.
func (t *Telemetry) SetReplication(fn func() ReplicationStats) {
	if t == nil {
		return
	}
	if fn == nil {
		t.replication.Store(nil)
		return
	}
	t.replication.Store(&fn)
}

// Replication returns the wired replication snapshot and true, or a
// zero value and false when no publisher is wired (or the receiver is
// nil).
func (t *Telemetry) Replication() (ReplicationStats, bool) {
	if t == nil {
		return ReplicationStats{}, false
	}
	fn := t.replication.Load()
	if fn == nil {
		return ReplicationStats{}, false
	}
	return (*fn)(), true
}

// SetExplain wires the provenance explain engine: fn takes a subject
// name, an object path, and a textual mode set, and returns the
// human-readable verdict tree plus its JSON encoding. nil detaches.
func (t *Telemetry) SetExplain(fn func(subject, path, modes string) (text string, jsonBody []byte, err error)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.explain.Store(nil)
		return
	}
	t.explain.Store(&fn)
}

// Explain runs the wired explain engine; it errors when none is wired
// (or the receiver is nil).
func (t *Telemetry) Explain(subject, path, modes string) (text string, jsonBody []byte, err error) {
	if t == nil {
		return "", nil, errors.New("telemetry: explain not wired")
	}
	fn := t.explain.Load()
	if fn == nil {
		return "", nil, errors.New("telemetry: explain not wired")
	}
	return (*fn)(subject, path, modes)
}

// RegisterGuards pre-creates the per-guard stat entries so the metric
// series exist (at zero) before the first sampled evaluation.
func (t *Telemetry) RegisterGuards(names ...string) {
	if t == nil {
		return
	}
	for _, n := range names {
		t.metrics.guard(n)
	}
}

// Mediation counts one mediated decision of the given kind (an index
// into Options.Kinds). One atomic add; called for every decision,
// sampled or not. The count it pays for anyway doubles as the sampling
// clock: every sampleEvery-th decision of a stream arms the flag the
// next Tracing probe consumes. The body is flat (no nested calls) so
// it inlines into the enforcement path.
func (t *Telemetry) Mediation(kind int, allowed bool) {
	if t == nil || kind < 0 || 2*kind >= len(t.metrics.mediations) {
		return
	}
	i := 2 * kind
	if !allowed {
		i++
	}
	if t.metrics.mediations[i].Add(1)&t.sampleMask == 0 && t.sampleEvery > 1 {
		t.sampleFlag.Store(true)
	}
}

// Tracing reports whether the next StartTrace would sample, without
// the cost of building its arguments: one flag load, inlinable, so the
// enforcement path probes it before touching strings. A true result is
// advisory — a concurrent mediation may win the flag — so callers must
// still handle a nil StartTrace.
func (t *Telemetry) Tracing() bool {
	return t != nil && (t.sampleEvery == 1 || t.sampleFlag.Load())
}

// Admission counts one dispatcher admission decision.
func (t *Telemetry) Admission(admitted bool) {
	if t == nil {
		return
	}
	t.metrics.admission(admitted)
}

// StartTrace makes the sampling decision for one mediation and, when
// selected, returns an ActiveTrace for the mechanism layers to fill.
// Unsampled mediations get nil (every ActiveTrace method no-ops on
// nil) and pay one plain atomic load. The first mediation is always
// sampled, so a freshly booted system has a trace to show.
func (t *Telemetry) StartTrace(kind, subject, path, op string) *ActiveTrace {
	if t == nil {
		return nil
	}
	if t.sampleEvery > 1 &&
		(!t.sampleFlag.Load() || !t.sampleFlag.CompareAndSwap(true, false)) {
		return nil
	}
	a := &ActiveTrace{tel: t, start: time.Now()}
	a.t = Trace{
		ID:      t.traceID.Add(1),
		Time:    a.start,
		Kind:    kind,
		Subject: subject,
		Path:    path,
		Op:      op,
		Spans:   a.buf[:0],
	}
	return a
}

// finish completes a sampled trace: feed the latency histogram and,
// unless the mode is metrics-only, publish the trace into the ring.
func (t *Telemetry) finish(a *ActiveTrace) {
	t.metrics.mediationLat.Observe(a.t.Total)
	t.sampled.Add(1)
	if t.mode == ModeMetrics {
		return
	}
	slot := (t.ringPos.Add(1) - 1) % uint64(len(t.ring))
	t.ring[slot].Store(&a.t)
}

// Recent returns up to n of the most recently completed traces, newest
// first (n <= 0 returns all retained). deniedOnly filters to denials.
func (t *Telemetry) Recent(n int, deniedOnly bool) []Trace {
	if t == nil {
		return nil
	}
	var out []Trace
	for i := range t.ring {
		if tr := t.ring[i].Load(); tr != nil {
			if deniedOnly && tr.Allowed {
				continue
			}
			out = append(out, *tr)
		}
	}
	// Newest first: IDs are monotone.
	sortTracesByIDDesc(out)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

func sortTracesByIDDesc(ts []Trace) {
	// Insertion sort: the ring is almost sorted already and stays small.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j-1].ID < ts[j].ID; j-- {
			ts[j-1], ts[j] = ts[j], ts[j-1]
		}
	}
}

// Snapshot assembles the full metrics view, pulling cache and audit
// counters through the wired callbacks. Safe on nil (zero snapshot,
// mode "off").
func (t *Telemetry) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{Mode: ModeOff.String()}
	}
	var s Snapshot
	s.Mode = t.mode.String()
	s.SampleEvery = int(t.sampleEvery)
	s.Mediations, s.MediationLatency, s.Guards, s.Admissions = t.metrics.snapshot()
	s.TracesSampled = t.sampled.Load()
	if fn := t.cacheStats.Load(); fn != nil {
		s.Cache = (*fn)()
	}
	if fn := t.auditStats.Load(); fn != nil {
		s.Audit = (*fn)()
	}
	if fn := t.namesStats.Load(); fn != nil {
		s.Names = (*fn)()
	}
	if fn := t.replication.Load(); fn != nil {
		r := (*fn)()
		s.Replication = &r
	}
	return s
}
