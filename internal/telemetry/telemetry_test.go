package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestTelemetry(opts Options) *Telemetry {
	if opts.Kinds == nil {
		opts.Kinds = []string{"call", "data"}
	}
	return New(opts)
}

func TestNilTelemetryIsNoOp(t *testing.T) {
	var tel *Telemetry
	tel.Mediation(0, true)
	tel.Admission(false)
	tel.RegisterGuards("dac")
	tel.SetCacheStats(func() CacheStats { return CacheStats{} })
	tel.SetAuditStats(nil)
	if tr := tel.StartTrace("call", "a", "/x", "read"); tr != nil {
		t.Fatal("nil telemetry sampled a trace")
	}
	var a *ActiveTrace
	a.SetClass("c")
	a.Span("resolve", "", time.Microsecond)
	a.CacheProbe(true, 1, 0)
	a.Guard("dac", true, "", 0)
	a.Finish(1, true, "")
	if got := tel.Recent(10, false); got != nil {
		t.Fatalf("nil Recent = %v", got)
	}
	s := tel.Snapshot()
	if s.Mode != "off" {
		t.Fatalf("nil snapshot mode = %q, want off", s.Mode)
	}
	if tel.Mode() != ModeOff {
		t.Fatalf("nil Mode() = %v", tel.Mode())
	}
}

func TestNewOffReturnsNil(t *testing.T) {
	if tel := New(Options{Mode: ModeOff}); tel != nil {
		t.Fatal("New(ModeOff) != nil")
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"off", ModeOff, true}, {"metrics", ModeMetrics, true},
		{"sampled", ModeSampled, true}, {"full", ModeFull, true},
		{"bogus", ModeOff, false},
	} {
		got, ok := ParseMode(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseMode(%q) = %v,%v want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestMediationCounters(t *testing.T) {
	tel := newTestTelemetry(Options{})
	tel.Mediation(0, true)
	tel.Mediation(0, true)
	tel.Mediation(0, false)
	tel.Mediation(1, false)
	tel.Mediation(99, true) // out of range: ignored, no panic
	tel.Mediation(-1, true)
	s := tel.Snapshot()
	if s.Mediations[0].Allowed != 2 || s.Mediations[0].Denied != 1 {
		t.Fatalf("kind 0 = %+v", s.Mediations[0])
	}
	if s.Mediations[1].Denied != 1 {
		t.Fatalf("kind 1 = %+v", s.Mediations[1])
	}
	a, d := s.Mediated()
	if a != 2 || d != 2 {
		t.Fatalf("Mediated() = %d,%d want 2,2", a, d)
	}
}

func TestSampling(t *testing.T) {
	// The decision counter is the sampling clock: StartTrace consumes a
	// flag that Mediation arms every SampleEvery-th decision, so the
	// test follows the real request flow (trace decision, then count).
	tel := newTestTelemetry(Options{SampleEvery: 4})
	sampled := 0
	for i := 0; i < 16; i++ {
		tr := tel.StartTrace("call", "a", "/x", "read")
		tel.Mediation(0, true)
		if tr != nil {
			sampled++
			tr.Finish(0, true, "")
		}
	}
	// Requests 1 (boot flag), 5, 9, and 13 (armed by counts 4, 8, 12).
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 with SampleEvery=4, want 4", sampled)
	}
	// The very first mediation must be sampled.
	tel2 := newTestTelemetry(Options{SampleEvery: 1000})
	if tr := tel2.StartTrace("call", "a", "/x", "read"); tr == nil {
		t.Fatal("first mediation not sampled")
	}
	// SampleEvery rounds up to a power of two.
	if got := tel2.Snapshot().SampleEvery; got != 1024 {
		t.Fatalf("SampleEvery 1000 rounded to %d, want 1024", got)
	}
}

func TestFullModeTracesEverything(t *testing.T) {
	tel := newTestTelemetry(Options{Mode: ModeFull, SampleEvery: 1000})
	for i := 0; i < 10; i++ {
		tr := tel.StartTrace("call", "a", "/x", "read")
		if tr == nil {
			t.Fatal("full mode skipped a trace")
		}
		tr.Finish(0, true, "")
	}
	if got := len(tel.Recent(0, false)); got != 10 {
		t.Fatalf("retained %d traces, want 10", got)
	}
}

func TestMetricsModeRetainsNoTraces(t *testing.T) {
	tel := newTestTelemetry(Options{Mode: ModeMetrics, SampleEvery: 1})
	tr := tel.StartTrace("call", "a", "/x", "read")
	if tr == nil {
		t.Fatal("metrics mode must still sample for histograms")
	}
	tr.Finish(0, true, "")
	if got := tel.Recent(0, false); len(got) != 0 {
		t.Fatalf("metrics mode retained traces: %v", got)
	}
	if s := tel.Snapshot(); s.MediationLatency.Count != 1 {
		t.Fatalf("latency histogram count = %d, want 1", s.MediationLatency.Count)
	}
}

func TestTraceContentAndRender(t *testing.T) {
	tel := newTestTelemetry(Options{Mode: ModeFull})
	tr := tel.StartTrace("data", "alice", "/fs/secret", "read")
	tr.SetClass("organization:{dept-1}")
	tr.CacheProbe(false, 7, 120*time.Nanosecond)
	tr.Span("resolve", "", time.Microsecond)
	tr.Guard("dac", true, "", 300*time.Nanosecond)
	tr.Guard("mac", false, "mac: no read up", 200*time.Nanosecond)
	tr.Finish(42, false, "denied: mac: no read up")

	got := tel.Recent(1, false)
	if len(got) != 1 {
		t.Fatalf("want 1 trace, got %d", len(got))
	}
	trace := got[0]
	if trace.Seq != 42 || trace.Allowed || trace.DeniedBy != "mac" {
		t.Fatalf("trace = %+v", trace)
	}
	if len(trace.Spans) != 4 {
		t.Fatalf("spans = %v", trace.Spans)
	}
	if trace.Spans[0].Name != "cache" || !strings.Contains(trace.Spans[0].Detail, "miss gen=7") {
		t.Fatalf("cache span = %+v", trace.Spans[0])
	}
	line := trace.String()
	for _, want := range []string{"DENY", "alice@organization:{dept-1}", "/fs/secret",
		"guard:mac", "denied-by=mac", "seq=42"} {
		if !strings.Contains(line, want) {
			t.Errorf("render %q missing %q", line, want)
		}
	}

	// The denying guard's evaluation fed the per-guard metrics.
	s := tel.Snapshot()
	var mac *GuardStat
	for i := range s.Guards {
		if s.Guards[i].Name == "mac" {
			mac = &s.Guards[i]
		}
	}
	if mac == nil || mac.Denied != 1 || mac.Latency.Count != 1 {
		t.Fatalf("mac guard stat = %+v", mac)
	}
}

func TestRecentFilterAndLimit(t *testing.T) {
	tel := newTestTelemetry(Options{Mode: ModeFull, TraceCapacity: 4})
	for i := 0; i < 6; i++ {
		tr := tel.StartTrace("call", "a", "/x", "read")
		tr.Finish(uint64(i+1), i%2 == 0, "boom")
	}
	all := tel.Recent(0, false)
	if len(all) != 4 {
		t.Fatalf("ring retained %d, want 4", len(all))
	}
	if all[0].ID < all[1].ID {
		t.Fatal("Recent not newest-first")
	}
	denied := tel.Recent(0, true)
	for _, tr := range denied {
		if tr.Allowed {
			t.Fatalf("denied filter returned allow: %+v", tr)
		}
	}
	if got := tel.Recent(2, false); len(got) != 2 {
		t.Fatalf("limit 2 returned %d", len(got))
	}
}

func TestRegisterGuardsAndStatsWiring(t *testing.T) {
	tel := newTestTelemetry(Options{})
	tel.RegisterGuards("dac", "mac")
	tel.SetCacheStats(func() CacheStats {
		return CacheStats{Hits: 10, Misses: 3, Invalidations: 2, Capacity: 64}
	})
	tel.SetAuditStats(func() AuditStats {
		return AuditStats{Total: 5, Allowed: 4, Denied: 1, Dropped: 7}
	})
	tel.Admission(true)
	tel.Admission(false)
	s := tel.Snapshot()
	if len(s.Guards) != 2 || s.Guards[0].Name != "dac" || s.Guards[1].Name != "mac" {
		t.Fatalf("guards = %+v", s.Guards)
	}
	if s.Cache.Hits != 10 || s.Audit.Dropped != 7 {
		t.Fatalf("wired stats = %+v %+v", s.Cache, s.Audit)
	}
	if s.Admissions.Allowed != 1 || s.Admissions.Denied != 1 {
		t.Fatalf("admissions = %+v", s.Admissions)
	}
}

func TestWritePromOutput(t *testing.T) {
	tel := newTestTelemetry(Options{Mode: ModeFull})
	tel.RegisterGuards("dac", "mac")
	tel.Mediation(0, true)
	tel.Mediation(1, false)
	tel.SetCacheStats(func() CacheStats { return CacheStats{Hits: 8, Misses: 2} })
	tr := tel.StartTrace("call", "a", "/x", "read")
	tr.Guard("dac", true, "", 250*time.Nanosecond)
	tr.Finish(1, true, "")

	var b strings.Builder
	if err := WriteProm(&b, tel.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`secext_mediations_total{kind="call",verdict="allowed"} 1`,
		`secext_mediations_total{kind="data",verdict="denied"} 1`,
		`secext_decision_cache_hits_total 8`,
		`secext_decision_cache_misses_total 2`,
		`secext_guard_eval_seconds_bucket{guard="dac",le="+Inf"} 1`,
		`secext_guard_eval_seconds_count{guard="mac"} 0`,
		`secext_mediation_seconds_count 1`,
		`secext_traces_sampled_total 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q\n%s", want, out)
		}
	}
	// Basic format sanity: every non-comment line is "name{labels} value"
	// or "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed prom line %q", line)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	tel := newTestTelemetry(Options{Mode: ModeFull})
	tr := tel.StartTrace("call", "alice", "/svc/x", "execute")
	tr.Guard("dac", false, "acl: no execute", time.Microsecond)
	tr.Finish(3, false, "denied")
	srv := httptest.NewServer(tel.HTTPHandler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String(), resp.Header.Get("Content-Type")
	}

	metrics, ct := get("/metrics")
	if !strings.Contains(ct, "text/plain") || !strings.Contains(metrics, "secext_mediations_total") {
		t.Fatalf("/metrics: ct=%q body=%q", ct, metrics[:min(len(metrics), 200)])
	}

	stats, ct := get("/debug/stats")
	if !strings.Contains(ct, "application/json") {
		t.Fatalf("/debug/stats content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(stats), &snap); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	if snap.Mode != "full" {
		t.Fatalf("snapshot mode = %q", snap.Mode)
	}

	body, _ := get("/debug/trace/recent?n=5&denied=1")
	var traces []Trace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("traces not JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].DeniedBy != "dac" {
		t.Fatalf("traces = %+v", traces)
	}
	text, _ := get("/debug/trace/recent?text=1")
	if !strings.Contains(text, "denied-by=dac") {
		t.Fatalf("text render = %q", text)
	}
	if bad, _ := get("/debug/trace/recent?n=potato"); !strings.Contains(bad, "bad n") {
		t.Fatalf("bad n accepted: %q", bad)
	}

	// Nil telemetry still serves (zero) endpoints.
	var nilTel *Telemetry
	nilSrv := httptest.NewServer(nilTel.HTTPHandler())
	defer nilSrv.Close()
	resp, err := nilSrv.Client().Get(nilSrv.URL + "/metrics")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("nil /metrics: %v %v", err, resp)
	}
	resp.Body.Close()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestPromQuote: label values escape exactly the three bytes the
// exposition format defines — backslash, double quote, line feed —
// and pass everything else (tabs, UTF-8) through literally, which is
// where strconv.Quote would corrupt the output.
func TestPromQuote(t *testing.T) {
	cases := []struct{ in, want string }{
		{"dac", `"dac"`},
		{`he said "hi"`, `"he said \"hi\""`},
		{`back\slash`, `"back\\slash"`},
		{"line\nfeed", `"line\nfeed"`},
		{"tab\there", "\"tab\there\""},
		{"classé ⊑ ⊤", `"classé ⊑ ⊤"`},
		{"", `""`},
	}
	for _, tc := range cases {
		if got := promQuote(tc.in); got != tc.want {
			t.Errorf("promQuote(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

// TestPromLabelEscaping: a quote-bearing name flows through WriteProm
// as a correctly escaped label value. Guard names carry arbitrary
// strings (a quota guard may embed the subject it meters, e.g.
// quota("o'brien \"admin\"")), so the guard label is the path that
// must never emit an unescaped quote.
func TestPromLabelEscaping(t *testing.T) {
	tel := newTestTelemetry(Options{Mode: ModeFull})
	tel.RegisterGuards(`quota("o'brien \"admin\"")`)

	var b strings.Builder
	if err := WriteProm(&b, tel.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `guard="quota(\"o'brien \\\"admin\\\"\")"`
	if !strings.Contains(out, want) {
		t.Fatalf("prom output missing escaped label %s\n%s", want, out)
	}
	// No line may contain an unescaped interior quote: strip every
	// \\ and \" and what remains must have exactly the delimiter quotes.
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "guard=") {
			continue
		}
		clean := strings.ReplaceAll(strings.ReplaceAll(line, `\\`, ``), `\"`, ``)
		if n := strings.Count(clean, `"`); n%2 != 0 {
			t.Errorf("odd quote count after unescaping: %q", line)
		}
	}
}

// TestPromDivergenceMetrics: the shadow monitor counters and journal
// gauge render under their documented metric names.
func TestPromDivergenceMetrics(t *testing.T) {
	tel := newTestTelemetry(Options{})
	tel.SetNamesStats(func() NamesStats {
		return NamesStats{ShadowChecks: 41, Divergences: 2, JournalRecords: 17}
	})
	var b strings.Builder
	if err := WriteProm(&b, tel.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"secext_compiled_shadow_checks_total 41",
		"secext_compiled_divergence_total 2",
		"secext_epoch_journal_records 17",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
}

// TestPromFootprintMetrics: the per-epoch footprint gauges and interner
// counters render under the secext_epoch_footprint_* / secext_interner_*
// metric names.
func TestPromFootprintMetrics(t *testing.T) {
	tel := newTestTelemetry(Options{})
	tel.SetNamesStats(func() NamesStats {
		return NamesStats{Footprint: FootprintStats{
			Nodes: 100, Leaves: 60, Directories: 40,
			OwnedNodes: 7, SharedNodes: 93,
			ChildSliceBytes: 3200, PathBytes: 1800, NameBytes: 0,
			NodeStructBytes: 12800, ACLBytes: 640, TotalBytes: 18440,
			BytesPerNode: 184.4, ACLRefs: 100, DistinctACLs: 4, ACLDedupRatio: 25,
			InternedStrings: 99, InternedBytes: 1800,
			InternHits: 5, InternMisses: 99, InternResets: 1,
			ACLCanonDistinct: 4, ACLCanonDedups: 96, ACLCanonResets: 0,
		}}
	})
	var b strings.Builder
	if err := WriteProm(&b, tel.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`secext_epoch_footprint_nodes{role="all"} 100`,
		`secext_epoch_footprint_nodes{role="leaf"} 60`,
		`secext_epoch_footprint_sharing{nodes="owned"} 7`,
		`secext_epoch_footprint_sharing{nodes="shared"} 93`,
		`secext_epoch_footprint_bytes{component="child_slices"} 3200`,
		`secext_epoch_footprint_bytes{component="total"} 18440`,
		`secext_epoch_footprint_bytes_per_node 184.4`,
		`secext_epoch_footprint_acl_dedupe_ratio 25`,
		`secext_interner_strings 99`,
		`secext_interner_lookups_total{outcome="miss"} 99`,
		`secext_interner_resets_total{table="paths"} 1`,
		`secext_acl_canon_dedups_total 96`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
}

// TestTraceEpochRendering: EpochVersion stamps the trace header field
// (rendered as epoch=N) while keeping the epoch span for span-level
// consumers; an unstamped trace omits the field.
func TestTraceEpochRendering(t *testing.T) {
	tel := newTestTelemetry(Options{Mode: ModeFull})
	tr := tel.StartTrace("data", "alice", "/fs/x", "read")
	tr.EpochVersion(7)
	tr.Finish(1, true, "")

	got := tel.Recent(1, false)[0]
	if got.Epoch != 7 {
		t.Fatalf("trace.Epoch = %d", got.Epoch)
	}
	if got.Spans[0].Name != "epoch" || got.Spans[0].Detail != "v=7" {
		t.Fatalf("epoch span = %+v", got.Spans[0])
	}
	if line := got.String(); !strings.Contains(line, " epoch=7 ") {
		t.Errorf("render %q missing epoch=7", line)
	}

	tr = tel.StartTrace("data", "bob", "/fs/y", "read")
	tr.Finish(2, true, "")
	if line := tel.Recent(1, false)[0].String(); strings.Contains(line, "epoch=") {
		t.Errorf("unstamped trace renders an epoch: %q", line)
	}
}

// TestEpochTransitionString covers the render variants: registry
// provenance with full vs incremental freeze, compile cost shown for
// real builds and suppressed for reuse, registry-less records.
func TestEpochTransitionString(t *testing.T) {
	base := EpochTransition{
		Version: 12, Time: time.Unix(0, 0).UTC(), Shards: []string{"names", "registry"},
		BatchSize: 3, RegistryVersion: 4, Compile: "incremental",
		CompileNS: 1500, PublishNS: 42000,
	}
	s := base.String()
	for _, want := range []string{
		"epoch v12", "shards=names+registry", "batch=3",
		"registry=v4 freeze=full", "compile=incremental(1.5µs)", "publish=42µs",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("render %q missing %q", s, want)
		}
	}

	incr := base
	incr.IncrementalFreeze = true
	incr.RegistryDeltaBase = 3
	if s := incr.String(); !strings.Contains(s, "freeze=incremental(from v3)") {
		t.Errorf("incremental render = %q", s)
	}

	bare := EpochTransition{Version: 2, Shards: []string{"names"}, BatchSize: 1, Compile: "none"}
	s = bare.String()
	if strings.Contains(s, "registry=") || strings.Contains(s, "compile=none(") {
		t.Errorf("bare render = %q", s)
	}
}

// TestEpochJournalAndExplainWiring: the injected hooks round-trip, and
// both are nil-safe before wiring and on a nil receiver.
func TestEpochJournalAndExplainWiring(t *testing.T) {
	var nilTel *Telemetry
	if recs := nilTel.EpochJournal(5); recs != nil {
		t.Errorf("nil telemetry journal = %v", recs)
	}
	if _, _, err := nilTel.Explain("a", "/x", "read"); err == nil {
		t.Error("nil telemetry explain did not error")
	}

	tel := newTestTelemetry(Options{})
	if recs := tel.EpochJournal(5); recs != nil {
		t.Errorf("unwired journal = %v", recs)
	}
	if _, _, err := tel.Explain("a", "/x", "read"); err == nil {
		t.Error("unwired explain did not error")
	}

	tel.SetEpochJournal(func(n int) []EpochTransition {
		return []EpochTransition{{Version: uint64(n)}}
	})
	if recs := tel.EpochJournal(9); len(recs) != 1 || recs[0].Version != 9 {
		t.Errorf("wired journal = %v", recs)
	}
	tel.SetExplain(func(subject, path, mode string) (string, []byte, error) {
		return "TEXT " + subject, []byte(`{"ok":true}`), nil
	})
	text, body, err := tel.Explain("alice", "/x", "read")
	if err != nil || text != "TEXT alice" || string(body) != `{"ok":true}` {
		t.Errorf("wired explain = (%q, %q, %v)", text, body, err)
	}
}

// TestHTTPEpochsAndExplain drives the two new debug endpoints through
// a real HTTP server: JSON and text renderings, parameter validation,
// and error propagation from the explain hook.
func TestHTTPEpochsAndExplain(t *testing.T) {
	tel := newTestTelemetry(Options{})
	tel.SetEpochJournal(func(n int) []EpochTransition {
		return []EpochTransition{{Version: 5, Shards: []string{"names"}, BatchSize: 2, Compile: "full"}}
	})
	tel.SetExplain(func(subject, path, mode string) (string, []byte, error) {
		if subject == "nobody" {
			return "", nil, fmt.Errorf("unknown principal %q", subject)
		}
		return "ALLOW " + subject, []byte(`{"allowed":true}`), nil
	})
	srv := httptest.NewServer(tel.HTTPHandler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/debug/epochs"); code != 200 || !strings.Contains(body, `"version": 5`) {
		t.Errorf("/debug/epochs = %d %q", code, body)
	}
	if _, body := get("/debug/epochs?text=1&n=3"); !strings.Contains(body, "epoch v5") {
		t.Errorf("/debug/epochs text = %q", body)
	}
	if code, body := get("/debug/epochs?n=potato"); code != 400 || !strings.Contains(body, "bad n") {
		t.Errorf("bad n = %d %q", code, body)
	}

	if code, body := get("/debug/explain?subject=alice&path=/x&mode=read&text=1"); code != 200 || body != "ALLOW alice" {
		t.Errorf("explain text = %d %q", code, body)
	}
	if code, body := get("/debug/explain?subject=alice&path=/x&mode=read"); code != 200 || body != `{"allowed":true}` {
		t.Errorf("explain json = %d %q", code, body)
	}
	if code, body := get("/debug/explain?subject=alice"); code != 400 || !strings.Contains(body, "need subject=") {
		t.Errorf("missing params = %d %q", code, body)
	}
	if code, body := get("/debug/explain?subject=nobody&path=/x&mode=read"); code != 400 || !strings.Contains(body, "unknown principal") {
		t.Errorf("hook error = %d %q", code, body)
	}

	// A nil telemetry serves the endpoints too: empty journal, explain
	// reports the unwired condition instead of crashing.
	var nilTel *Telemetry
	nilSrv := httptest.NewServer(nilTel.HTTPHandler())
	defer nilSrv.Close()
	resp, err := nilSrv.Client().Get(nilSrv.URL + "/debug/epochs")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("nil /debug/epochs: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = nilSrv.Client().Get(nilSrv.URL + "/debug/explain?subject=a&path=/x&mode=read")
	if err != nil || resp.StatusCode != 400 {
		t.Fatalf("nil /debug/explain: %v %v", err, resp)
	}
	resp.Body.Close()
}

// TestReplicationWiring: the replication hook flows into Snapshot,
// WriteProm, and /debug/replicas; an unwired telemetry reports the
// absence cleanly everywhere.
func TestReplicationWiring(t *testing.T) {
	tel := newTestTelemetry(Options{})

	// Unwired: accessor says no, the endpoint 404s, prom emits nothing.
	if _, ok := tel.Replication(); ok {
		t.Fatal("Replication() reported wired before SetReplication")
	}
	var hist Histogram
	hist.Observe(3 * time.Millisecond)
	stats := ReplicationStats{
		PrimaryVersion:  9,
		Snapshots:       2,
		Deltas:          40,
		SnapshotBytes:   5000,
		DeltaBytes:      6000,
		BarrierTimeouts: 1,
		BarrierWait:     hist.Snapshot(),
		Peers: []ReplicaPeerStat{
			{Name: `rep"1`, Acked: 7, Lag: 2, Deltas: 40, DeltaBytes: 6000, SnapshotBytes: 2500},
		},
	}
	var b strings.Builder
	if err := WriteProm(&b, tel.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "secext_replica_") {
		t.Fatal("prom carries replica metrics with no publisher wired")
	}

	tel.SetReplication(func() ReplicationStats { return stats })
	got, ok := tel.Replication()
	if !ok || got.PrimaryVersion != 9 || len(got.Peers) != 1 {
		t.Fatalf("Replication() = %+v, %v", got, ok)
	}

	b.Reset()
	if err := WriteProm(&b, tel.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, w := range []string{
		"secext_replica_primary_version 9",
		"secext_replica_peers 1",
		`secext_replica_lag{peer="rep\"1"} 2`,
		`secext_replica_messages_total{kind="snapshot"} 2`,
		`secext_replica_messages_total{kind="delta"} 40`,
		`secext_replica_bytes_total{kind="snapshot"} 5000`,
		`secext_replica_bytes_total{kind="delta"} 6000`,
		"secext_replica_barrier_timeouts_total 1",
		"secext_replica_barrier_wait_seconds_count 1",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("prom output missing %q", w)
		}
	}

	srv := httptest.NewServer(tel.HTTPHandler())
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}
	if code, body := get("/debug/replicas"); code != 200 ||
		!strings.Contains(body, `"primary_version": 9`) || !strings.Contains(body, `rep\"1`) {
		t.Errorf("/debug/replicas json = %d %q", code, body)
	}
	if code, body := get("/debug/replicas?text=1"); code != 200 ||
		!strings.Contains(body, "primary=v9 peers=1") || !strings.Contains(body, "acked=v7 lag=2") {
		t.Errorf("/debug/replicas text = %d %q", code, body)
	}

	// Detach: back to 404.
	tel.SetReplication(nil)
	if code, _ := get("/debug/replicas"); code != 404 {
		t.Errorf("/debug/replicas after detach = %d, want 404", code)
	}
	// Nil receiver: the setters and accessor are no-ops, not panics.
	var nilTel *Telemetry
	nilTel.SetReplication(func() ReplicationStats { return stats })
	if _, ok := nilTel.Replication(); ok {
		t.Error("nil telemetry reported a wired publisher")
	}
}
