package telemetry

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Span is one timed stage of a mediation: the decision-cache probe, the
// name-space resolve, or one guard's evaluation.
type Span struct {
	// Name identifies the stage: "cache", "resolve", or "guard:<name>".
	Name string `json:"name"`
	// Detail is stage-specific: "hit gen=42", "deny: mac: ...", etc.
	Detail string `json:"detail,omitempty"`
	// Dur is the stage's wall-clock duration.
	Dur time.Duration `json:"dur_ns"`
}

// Trace is one completed decision trace: the structured record of where
// a mediated access check spent its time and why it ended the way it
// did. Traces are correlated with the audit trail via Seq.
type Trace struct {
	// ID is a per-telemetry monotone trace identifier.
	ID uint64 `json:"id"`
	// Seq is the audit sequence number of the decision's audit event
	// (0 when auditing was disabled at decision time).
	Seq uint64 `json:"seq,omitempty"`
	// Time is when the mediation started.
	Time time.Time `json:"time"`
	// Kind is the audit kind of the operation ("call", "data", ...).
	Kind string `json:"kind"`
	// Subject is the requesting principal; Class its label at decision
	// time.
	Subject string `json:"subject"`
	Class   string `json:"class,omitempty"`
	// Path is the object name; Op the requested modes.
	Path string `json:"path"`
	Op   string `json:"op"`
	// Epoch is the policy-epoch version the decision was pinned to
	// (0 when the mechanism never reported one). It correlates traces
	// with the epoch-transition journal and with audit events.
	Epoch uint64 `json:"epoch,omitempty"`
	// Allowed is the final verdict; Reason explains a denial.
	Allowed bool   `json:"allowed"`
	Reason  string `json:"reason,omitempty"`
	// DeniedBy names the guard whose verdict denied the request, when
	// the denial came from the pipeline (empty for structural errors).
	DeniedBy string `json:"denied_by,omitempty"`
	// Total is the end-to-end mediation duration.
	Total time.Duration `json:"total_ns"`
	// Spans are the timed stages, in execution order.
	Spans []Span `json:"spans"`
}

// String renders the trace as a single forensics line: verdict, who,
// what, total time, and every stage with its duration — "which guard
// denied and how long each stage took" at a glance.
func (t Trace) String() string {
	var b strings.Builder
	verdict := "DENY "
	if t.Allowed {
		verdict = "ALLOW"
	}
	fmt.Fprintf(&b, "trace #%d seq=%d", t.ID, t.Seq)
	if t.Epoch != 0 {
		fmt.Fprintf(&b, " epoch=%d", t.Epoch)
	}
	fmt.Fprintf(&b, " %s %s %s", verdict, t.Kind, t.Subject)
	if t.Class != "" {
		b.WriteByte('@')
		b.WriteString(t.Class)
	}
	fmt.Fprintf(&b, " %s op=%s %s [", t.Path, t.Op, t.Total)
	for i, s := range t.Spans {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(s.Name)
		if s.Detail != "" {
			b.WriteByte(' ')
			b.WriteString(s.Detail)
		}
		b.WriteByte(' ')
		b.WriteString(s.Dur.String())
	}
	b.WriteByte(']')
	if t.DeniedBy != "" {
		fmt.Fprintf(&b, " denied-by=%s", t.DeniedBy)
	}
	if !t.Allowed && t.Reason != "" {
		fmt.Fprintf(&b, " reason=%q", t.Reason)
	}
	return b.String()
}

// ActiveTrace is a decision trace under construction. StartTrace hands
// one to the mediating goroutine, the mechanism layers append spans as
// stages complete, and Finish publishes the result. It is owned by a
// single goroutine and must not be shared.
//
// A nil *ActiveTrace is the "not sampled" case: every method is a no-op
// on nil, so instrumentation sites need exactly one predictable branch
// and the untraced path stays allocation-free.
type ActiveTrace struct {
	tel   *Telemetry
	start time.Time
	t     Trace
	// buf is the inline backing array for the first spans, so a typical
	// trace (cache + resolve + a few guards) costs one allocation total.
	buf [8]Span
}

// SetClass records the subject's rendered class label; called only
// after the sampling decision so unsampled requests never pay for the
// rendering.
func (a *ActiveTrace) SetClass(label string) {
	if a == nil {
		return
	}
	a.t.Class = label
}

// Span appends one timed stage.
func (a *ActiveTrace) Span(name, detail string, d time.Duration) {
	if a == nil {
		return
	}
	a.t.Spans = append(a.t.Spans, Span{Name: name, Detail: detail, Dur: d})
}

// EpochVersion records the published policy-epoch version the decision
// was pinned to: every later stage of this trace — resolve, each
// guard, the cache probe — ran against exactly this version of the name
// tree, the lattice, the registry, and the guard stack.
func (a *ActiveTrace) EpochVersion(v uint64) {
	if a == nil {
		return
	}
	a.t.Epoch = v
	a.Span("epoch", "v="+strconv.FormatUint(v, 10), 0)
}

// SnapshotVersion is the PR-4 name for EpochVersion, kept for
// compatibility: the pinned version grew from covering the name tree
// alone to covering the whole policy.
func (a *ActiveTrace) SnapshotVersion(v uint64) { a.EpochVersion(v) }

// CacheProbe records the decision-cache stage: whether the probe hit
// and the protection-state generation it was answered against.
func (a *ActiveTrace) CacheProbe(hit bool, gen uint64, d time.Duration) {
	if a == nil {
		return
	}
	detail := "miss gen="
	if hit {
		detail = "hit gen="
	}
	a.Span("cache", detail+strconv.FormatUint(gen, 10), d)
}

// Guard records one guard's verdict and evaluation time, feeding the
// per-guard latency histogram and marking DeniedBy on a denial.
func (a *ActiveTrace) Guard(name string, allowed bool, reason string, d time.Duration) {
	if a == nil {
		return
	}
	detail := "allow"
	if !allowed {
		detail = "deny: " + reason
		a.t.DeniedBy = name
	}
	a.Span("guard:"+name, detail, d)
	a.tel.metrics.observeGuard(name, allowed, d)
}

// Finish completes the trace with the final verdict and the audit
// sequence number of the matching audit event, feeds the latency
// histograms, and (when the mode retains traces) publishes it into the
// telemetry ring.
func (a *ActiveTrace) Finish(seq uint64, allowed bool, reason string) {
	if a == nil {
		return
	}
	a.t.Total = time.Since(a.start)
	a.t.Seq = seq
	a.t.Allowed = allowed
	if !allowed {
		a.t.Reason = reason
	}
	a.tel.finish(a)
}
