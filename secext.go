// Package secext is a security library for extensible systems,
// implementing the access-control model of "Security for Extensible
// Systems" (Robert Grimm and Brian N. Bershad, HotOS VI, 1997).
//
// The model in one paragraph: an extensible system lets units of code
// (extensions) be loaded and linked into a running base system.
// Extensions interact with the system in exactly two ways — they call
// existing services, and they extend (specialize) existing services —
// so protection must mediate both. secext does this with one central
// reference monitor over one universal hierarchical name space: every
// service, extension, thread, and file is a named node carrying a fully
// featured ACL (discretionary control, with the paper's execute and
// extend modes) and a security class drawn from a lattice of trust
// levels × category sets (mandatory control, Bell-LaPadula style).
// Threads of control carry their principal's class, the class
// propagates across calls, statically classed extensions clamp it, and
// the dispatcher selects among specializations by the caller's class.
//
// Quick start:
//
//	w, err := secext.NewWorld(secext.WorldOptions{
//		Levels:     []string{"others", "organization", "local"},
//		Categories: []string{"dept-1", "dept-2"},
//	})
//	// register principals, load extensions, call services:
//	w.Sys.AddPrincipal("alice", "organization:{dept-1}")
//	ctx, _ := w.Sys.NewContext("alice")
//	out, err := w.Sys.Call(ctx, "/svc/fs/read", secext.FileRequest{Path: "/fs/x"})
//
// The package is a facade: the types below alias the implementation in
// internal/, which is organized as DESIGN.md describes.
package secext

import (
	"io"

	"secext/internal/acl"
	"secext/internal/admission"
	"secext/internal/audit"
	"secext/internal/core"
	"secext/internal/dispatch"
	"secext/internal/extension"
	"secext/internal/fsys"
	"secext/internal/lattice"
	"secext/internal/monitor"
	"secext/internal/monitor/auditguard"
	"secext/internal/monitor/quotaguard"
	"secext/internal/names"
	"secext/internal/policy"
	"secext/internal/principal"
	"secext/internal/subject"
	"secext/internal/telemetry"
)

// Core system types.
type (
	// System is the reference monitor: the single central facility for
	// naming and protection.
	System = core.System
	// Options configure NewSystem.
	Options = core.Options
	// NodeSpec describes a name-space node for bootstrap creation.
	NodeSpec = core.NodeSpec
	// ServiceSpec describes a callable, extendable service.
	ServiceSpec = core.ServiceSpec
)

// Subjects and principals.
type (
	// Context is a thread of control: a principal plus its current
	// (possibly clamped) security class.
	Context = subject.Context
	// Principal is an individual identity.
	Principal = principal.Principal
	// Registry stores principals, groups, and memberships.
	Registry = principal.Registry
)

// Protection state.
type (
	// ACL is a discretionary access control list.
	ACL = acl.ACL
	// ACLEntry is one allow or deny entry.
	ACLEntry = acl.Entry
	// Mode is a bitmask of access modes.
	Mode = acl.Mode
	// Class is a mandatory security class (trust level + categories).
	Class = lattice.Class
	// Lattice is the universe of levels and categories.
	Lattice = lattice.Lattice
)

// Access modes (§2.1 of the paper).
const (
	Read         = acl.Read
	Write        = acl.Write
	WriteAppend  = acl.WriteAppend
	Execute      = acl.Execute
	Extend       = acl.Extend
	Administrate = acl.Administrate
	Delete       = acl.Delete
	List         = acl.List
	AllModes     = acl.AllModes
)

// ACL entry constructors.
var (
	Allow         = acl.Allow
	Deny          = acl.Deny
	AllowGroup    = acl.AllowGroup
	DenyGroup     = acl.DenyGroup
	AllowEveryone = acl.AllowEveryone
	DenyEveryone  = acl.DenyEveryone
	NewACL        = acl.New
	ParseACL      = acl.Parse
	ParseMode     = acl.ParseMode
)

// Name space.
type (
	// Node is one entry in the universal name space.
	Node = names.Node
	// NodeKind classifies name-space nodes.
	NodeKind = names.Kind
	// BindSpec describes a node for the checked Bind operation.
	BindSpec = names.BindSpec
)

// Node kinds.
const (
	KindDomain    = names.KindDomain
	KindInterface = names.KindInterface
	KindObject    = names.KindObject
	KindMethod    = names.KindMethod
	KindDirectory = names.KindDirectory
	KindFile      = names.KindFile
)

// Extensions and dispatch.
type (
	// Extension is the code side of a loadable extension.
	Extension = extension.Extension
	// Manifest declares an extension's identity and authority.
	Manifest = extension.Manifest
	// Linkage is the capability table an extension receives at load.
	Linkage = extension.Linkage
	// Capability is one bound import.
	Capability = extension.Capability
	// Loader admits extensions into a system.
	Loader = extension.Loader
	// LoadedExtension records one successfully linked extension.
	LoadedExtension = extension.Loaded
	// Handler is one service implementation.
	Handler = dispatch.Handler
	// Binding associates a handler with its owner and static class.
	Binding = dispatch.Binding
)

// The reference monitor's policy pipeline (mechanism/policy split).
type (
	// Guard is one composable policy module in the monitor pipeline.
	Guard = monitor.Guard
	// GuardRequest is one access-control question a guard decides.
	GuardRequest = monitor.Request
	// GuardVerdict is a guard's (or the pipeline's) answer.
	GuardVerdict = monitor.Verdict
	// Pipeline is the ordered guard stack every mediated operation
	// consults; reach it via System.Monitor().
	Pipeline = monitor.Pipeline
	// AuditGuard observes requests without denying (dry-run rollout).
	AuditGuard = auditguard.Guard
	// QuotaGuard meters object accesses per subject, deny-by-default.
	QuotaGuard = quotaguard.Guard
)

// Guard constructors.
var (
	// NewAuditGuard builds a dry-run observer, optionally shadowing an
	// inner guard (see internal/monitor/auditguard).
	NewAuditGuard = auditguard.New
	// NewQuotaGuard builds a per-subject access meter scoped to a path
	// prefix ("" = everything; see internal/monitor/quotaguard).
	NewQuotaGuard = quotaguard.New
)

// Audit.
type (
	// AuditLog records every mediated decision.
	AuditLog = audit.Log
	// AuditEvent is one recorded decision.
	AuditEvent = audit.Event
	// AuditStats are the log's running counters.
	AuditStats = audit.Stats
	// AuditQuery selects retained audit events.
	AuditQuery = audit.Query
)

// Observability.
type (
	// Telemetry is the observability subsystem: mediation counters,
	// sampled latency histograms, and decision traces; reach it via
	// System.Telemetry() or World.Telemetry().
	Telemetry = telemetry.Telemetry
	// TelemetryOptions configure the subsystem (Options.Telemetry).
	TelemetryOptions = telemetry.Options
	// TelemetryMode selects how much the subsystem records.
	TelemetryMode = telemetry.Mode
	// TelemetrySnapshot is a point-in-time view of every counter.
	TelemetrySnapshot = telemetry.Snapshot
	// DecisionTrace is one sampled mediation, stage by stage.
	DecisionTrace = telemetry.Trace
)

// WriteProm renders a telemetry snapshot in Prometheus text exposition
// format (what secextd serves at /metrics).
var WriteProm = telemetry.WriteProm

// Telemetry modes.
const (
	// TelemetrySampled (the default) keeps all counters and samples
	// traces (1 in SampleEvery mediations).
	TelemetrySampled = telemetry.ModeSampled
	// TelemetryOff disables telemetry entirely.
	TelemetryOff = telemetry.ModeOff
	// TelemetryMetrics keeps counters and sampled histograms but retains
	// no traces.
	TelemetryMetrics = telemetry.ModeMetrics
	// TelemetryFull traces every mediation.
	TelemetryFull = telemetry.ModeFull
)

// Policy files.
type (
	// Policy is a parsed policy document.
	Policy = policy.Policy
)

// Origin-based admission (the paper's local / organization / outside
// applet classification).
type (
	// Admitter classifies code origins and admits extension manifests.
	Admitter = admission.Admitter
	// AdmissionRule maps an origin pattern to a class and clamp.
	AdmissionRule = admission.Rule
)

// File service.
type (
	// FS is the protected in-memory file service.
	FS = fsys.FS
	// FileRequest is the argument for the /svc/fs/* services.
	FileRequest = fsys.Request
	// FileInfo describes a file or directory.
	FileInfo = fsys.Info
)

// NewSystem creates a bare reference monitor (no services mounted).
func NewSystem(opts Options) (*System, error) { return core.NewSystem(opts) }

// ParsePolicy parses a policy document.
func ParsePolicy(r io.Reader) (*Policy, error) { return policy.Parse(r) }

// ParsePolicyString parses a policy document from a string.
func ParsePolicyString(s string) (*Policy, error) { return policy.ParseString(s) }

// IsDenied reports whether an error is an access-control denial.
func IsDenied(err error) bool { return core.IsDenied(err) }

// MountFS mounts a file service at root (a multilevel directory).
func MountFS(sys *System, root string, rootACL *ACL, class Class) (*FS, error) {
	return fsys.Mount(sys, root, rootACL, class)
}

// NewAdmitter builds an origin-based admission front end over the
// system's extension loader.
func NewAdmitter(sys *System, rules []AdmissionRule) (*Admitter, error) {
	return admission.New(sys, rules)
}

// SnapshotPolicy extracts the live protection state (lattice,
// principals, groups, nodes, ACLs) as a policy document that Build can
// reconstruct.
func SnapshotPolicy(sys *System) (*Policy, error) {
	return policy.Snapshot(sys)
}
