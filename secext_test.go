package secext

import (
	"strings"
	"testing"
)

func newTestWorld(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"myself", "dept-1", "dept-2", "outside"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestWorldLayout(t *testing.T) {
	w := newTestWorld(t)
	wantPaths := []string{
		"/svc", "/svc/fs/read", "/svc/fs/write", "/svc/fs/append",
		"/svc/fs/create", "/svc/fs/list", "/svc/fs/stat", "/svc/fs/remove",
		"/svc/thread/spawn", "/svc/thread/kill", "/svc/thread/list",
		"/svc/mbuf/alloc", "/svc/mbuf/free", "/svc/mbuf/stats",
		"/svc/net/open", "/svc/net/send", "/svc/net/recv", "/svc/net/close",
		"/svc/log/append", "/svc/log/read", "/svc/journal",
		"/fs", "/threads", "/net",
	}
	for _, p := range wantPaths {
		if _, err := w.Sys.Names().ResolveUnchecked(p); err != nil {
			t.Errorf("missing %s: %v", p, err)
		}
	}
	if w.FS == nil || w.Threads == nil || w.Mbuf == nil || w.Journal == nil || w.Net == nil {
		t.Error("world components missing")
	}
}

func TestWorldEndToEnd(t *testing.T) {
	w := newTestWorld(t)
	if _, err := w.Sys.AddPrincipal("alice", "organization:{dept-1}"); err != nil {
		t.Fatal(err)
	}
	ctx, err := w.Sys.NewContext("alice")
	if err != nil {
		t.Fatal(err)
	}
	// File round trip through the service interface.
	if _, err := w.Sys.Call(ctx, "/svc/fs/create", FileRequest{Path: "/fs/hello"}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := w.Sys.Call(ctx, "/svc/fs/write", FileRequest{Path: "/fs/hello", Data: []byte("hi")}); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := w.Sys.Call(ctx, "/svc/fs/read", FileRequest{Path: "/fs/hello"})
	if err != nil || string(out.([]byte)) != "hi" {
		t.Fatalf("read = %v, %v", out, err)
	}
	// Journal: append up works, read up is denied.
	if _, err := w.Sys.Call(ctx, "/svc/log/append", "alice event"); err != nil {
		t.Fatalf("journal append: %v", err)
	}
	if _, err := w.Sys.Call(ctx, "/svc/log/read", nil); !IsDenied(err) {
		t.Fatalf("journal read from below: got %v", err)
	}
	// An auditor at the top level reads it.
	if _, err := w.Sys.AddPrincipal("root", "local:{myself,dept-1,dept-2,outside}"); err != nil {
		t.Fatal(err)
	}
	if err := w.Sys.Registry().AddMember("auditors", "root"); err != nil {
		t.Fatal(err)
	}
	rctx, _ := w.Sys.NewContext("root")
	if _, err := w.Sys.Call(rctx, "/svc/log/read", nil); err != nil {
		t.Fatalf("auditor read: %v", err)
	}
	// Audit log saw everything.
	if w.Sys.Audit().Stats().Total == 0 {
		t.Error("audit log empty")
	}
}

func TestWorldOptionsValidation(t *testing.T) {
	if _, err := NewWorld(WorldOptions{}); err == nil {
		t.Error("no levels must fail")
	}
	if _, err := NewWorld(WorldOptions{Levels: []string{"a"}, JournalClassLabel: "bogus"}); err == nil {
		t.Error("bad journal label must fail")
	}
	w, err := NewWorld(WorldOptions{Levels: []string{"a"}, MbufCount: 2, MbufSize: 8, DisableAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	if w.Sys.Audit().Enabled() {
		t.Error("DisableAudit")
	}
	if w.Mbuf.BufSize() != 8 {
		t.Error("mbuf dimensions")
	}
}

func TestWorldPolicyText(t *testing.T) {
	w, err := NewWorld(WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
		PolicyText: `
levels others organization local
principal carol class organization:{dept-2}
group ops
member ops carol
node /extra domain class others
acl /extra allow @ops list
`,
	})
	if err != nil {
		t.Fatalf("NewWorld with policy: %v", err)
	}
	ctx, err := w.Sys.NewContext("carol")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := w.Sys.List(ctx, "/extra"); err != nil || len(got) != 0 {
		t.Errorf("policy-granted list: %v, %v", got, err)
	}
	// Bad policy text fails construction.
	if _, err := NewWorld(WorldOptions{
		Levels: []string{"a"}, PolicyText: "levels b\n",
	}); err == nil {
		t.Error("mismatched policy levels must fail")
	}
	if _, err := NewWorld(WorldOptions{
		Levels: []string{"a"}, PolicyText: "junk\n",
	}); err == nil {
		t.Error("unparseable policy must fail")
	}
}

func TestFacadePolicy(t *testing.T) {
	p, err := ParsePolicyString("levels lo hi\nprincipal p class hi\n")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := p.Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.NewContext("p"); err != nil {
		t.Error(err)
	}
	p2, err := ParsePolicy(strings.NewReader(p.Format()))
	if err != nil || len(p2.Principals) != 1 {
		t.Errorf("ParsePolicy: %v", err)
	}
}

func TestFacadeACLHelpers(t *testing.T) {
	a := NewACL(Allow("x", Read|Execute), DenyEveryone(Administrate),
		AllowGroup("g", List), DenyGroup("h", Extend), AllowEveryone(List), Deny("y", Write))
	b, err := ParseACL(a.String())
	if err != nil || b.String() != a.String() {
		t.Errorf("facade ACL round trip: %v", err)
	}
	m, err := ParseMode("read,execute")
	if err != nil || m != Read|Execute {
		t.Errorf("ParseMode: %v %v", m, err)
	}
	if AllModes&Read == 0 || AllModes&WriteAppend == 0 || AllModes&Delete == 0 {
		t.Error("mode constants")
	}
}

func TestFacadeMountFS(t *testing.T) {
	sys, err := NewSystem(Options{Levels: []string{"l"}})
	if err != nil {
		t.Fatal(err)
	}
	bot, _ := sys.Lattice().Bottom()
	fs, err := MountFS(sys, "/data", NewACL(AllowEveryone(List|Write)), bot)
	if err != nil || fs.Root() != "/data" {
		t.Fatalf("MountFS: %v", err)
	}
	if _, err := sys.Names().ResolveUnchecked("/data"); err != nil {
		t.Error("mount node missing")
	}
	// Kind constants usable through the facade.
	if KindDomain == KindFile || KindMethod == KindDirectory || KindInterface == KindObject {
		t.Error("kind constants")
	}
}
