package secext_test

// TestIntegrationStory ties every subsystem together in one narrative:
// an organization boots a world from a policy file, admits extensions
// from three origins, survives a hostile one, revokes a vendor, and
// audits the whole episode. Each numbered act asserts the paper's model
// holding up under composition — the situations §1 motivates, run
// against the full stack rather than isolated packages.

import (
	"strings"
	"testing"

	"secext"
)

func TestIntegrationStory(t *testing.T) {
	// --- Act 0: boot from policy. ---
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
		PolicyText: `
levels others organization local
principal it-admin class local:{dept-1,dept-2}
principal dev1     class organization:{dept-1}
principal dev2     class organization:{dept-2}
group developers
member developers dev1
member developers dev2
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := w.Sys
	admin, err := sys.NewContext("it-admin")
	if err != nil {
		t.Fatal(err)
	}
	// Administration of system-low objects happens at system low: a
	// high subject writing a low ACL would be a write-down, so the
	// admin sheds authority first (the standard MLS operator
	// discipline; Clamp is the meet).
	bottom, err := sys.Lattice().Bottom()
	if err != nil {
		t.Fatal(err)
	}
	lowAdmin, err := admin.Clamp(bottom)
	if err != nil {
		t.Fatal(err)
	}

	// --- Act 1: the admin publishes an extendable report service. ---
	err = sys.RegisterService(secext.ServiceSpec{
		Path: "/svc/report",
		ACL: secext.NewACL(
			secext.AllowGroup("developers", secext.Execute),
			secext.Allow("it-admin", secext.Execute|secext.Extend|secext.Administrate),
		),
		Base: secext.Binding{Owner: "base", Handler: func(ctx *secext.Context, arg any) (any, error) {
			return "plain:" + arg.(string), nil
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Act 2: origin-based admission of two vendor extensions. ---
	adm, err := secext.NewAdmitter(sys, []secext.AdmissionRule{
		{Pattern: "*.corp.example", ClassLabel: "organization:{dept-1}",
			StaticClamp: "organization:{dept-1}", AutoRegister: true},
		{Pattern: "*", ClassLabel: "others", StaticClamp: "others", AutoRegister: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The admitted extensions need extend on the service.
	if err := sys.SetACL(lowAdmin, "/svc/report", secext.NewACL(
		secext.AllowGroup("developers", secext.Execute),
		secext.Allow("it-admin", secext.Execute|secext.Extend|secext.Administrate),
		secext.Allow("corp-vendor", secext.Extend),
		secext.Allow("wild-vendor", secext.Extend),
	)); err != nil {
		t.Fatal(err)
	}
	if _, err := adm.Admit("tools.corp.example", secext.Manifest{
		Name: "fancy-report", Principal: "corp-vendor",
		Imports: []string{"/svc/mbuf/alloc", "/svc/mbuf/free"},
		Extends: []string{"/svc/report"},
		Code:    func() secext.Extension { return &reportExt{tag: "fancy"} },
	}); err != nil {
		t.Fatalf("admit corp vendor: %v", err)
	}
	// The wild vendor ships a handler that panics.
	if _, err := adm.Admit("cdn.wild.example", secext.Manifest{
		Name: "shady-report", Principal: "wild-vendor",
		Imports: []string{"/svc/mbuf/alloc", "/svc/mbuf/free"},
		Extends: []string{"/svc/report"},
		Code:    func() secext.Extension { return &reportExt{tag: "shady", bomb: true} },
	}); err != nil {
		t.Fatalf("admit wild vendor: %v", err)
	}

	// --- Act 3: dispatch picks per caller; the shady handler's panic
	// is contained. ---
	dev1, _ := sys.NewContext("dev1")
	out, err := sys.Call(dev1, "/svc/report", "q3")
	if err != nil || out != "fancy:q3" {
		t.Fatalf("dev1 report = %v, %v (want the corp extension)", out, err)
	}
	dev2, _ := sys.NewContext("dev2")
	// dev2 (dept-2) dominates only the shady extension's static class
	// (others) — and that handler bombs. The system survives with an
	// attributed error.
	_, err = sys.Call(dev2, "/svc/report", "q3")
	if err == nil || !strings.Contains(err.Error(), "shady-report") {
		t.Fatalf("dev2 report: %v (want contained panic naming shady-report)", err)
	}
	// The panic is on the audit trail.
	panics := 0
	for _, e := range sys.Audit().Recent(0) {
		if strings.Contains(e.Op, "handler-panic owner=shady-report") {
			panics++
		}
	}
	if panics != 1 {
		t.Errorf("audited panics = %d", panics)
	}

	// --- Act 4: the admin revokes the wild vendor; Revalidate evicts
	// its extension; dev2 falls back to the base service. ---
	if err := sys.SetACL(lowAdmin, "/svc/report", secext.NewACL(
		secext.AllowGroup("developers", secext.Execute),
		secext.Allow("it-admin", secext.Execute|secext.Extend|secext.Administrate),
		secext.Allow("corp-vendor", secext.Extend),
		secext.Deny("wild-vendor", secext.Extend),
	)); err != nil {
		t.Fatal(err)
	}
	dropped, err := sys.Loader().Revalidate()
	if err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 1 || dropped[0] != "shady-report" {
		t.Fatalf("Revalidate dropped %v, want [shady-report]", dropped)
	}
	out, err = sys.Call(dev2, "/svc/report", "q3")
	if err != nil || out != "plain:q3" {
		t.Fatalf("dev2 after eviction = %v, %v", out, err)
	}
	// dev1 still gets the healthy extension.
	if out, _ := sys.Call(dev1, "/svc/report", "q4"); out != "fancy:q4" {
		t.Errorf("dev1 after eviction = %v", out)
	}

	// --- Act 5: the record. Everything above is reconstructible from
	// the audit log and the protection state snapshot. ---
	denials := sys.Audit().Select(secext.AuditQuery{DeniedOnly: true})
	if len(denials) == 0 {
		t.Error("the episode must have left denials on the trail")
	}
	snap, err := secext.SnapshotPolicy(sys)
	if err != nil {
		t.Fatal(err)
	}
	text := snap.Format()
	for _, want := range []string{
		"deny wild-vendor extend",
		"principal corp-vendor class organization:{dept-1}",
		"group developers",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
}

// reportExt decorates reports, optionally exploding.
type reportExt struct {
	tag   string
	bomb  bool
	alloc *secext.Capability
}

func (e *reportExt) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	var err error
	if e.alloc, err = lk.Cap("/svc/mbuf/alloc"); err != nil {
		return nil, err
	}
	h := func(ctx *secext.Context, arg any) (any, error) {
		if e.bomb {
			panic("shady extension misbehaves")
		}
		return e.tag + ":" + arg.(string), nil
	}
	return map[string]secext.Handler{"/svc/report": h}, nil
}
