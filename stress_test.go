package secext_test

// World-level concurrency stress: services are called, files written,
// messages passed, and extensions loaded and unloaded simultaneously.
// Run under -race this exercises the locking across every subsystem at
// once; the assertions check nothing leaked and nothing deadlocked.

import (
	"fmt"
	"sync"
	"testing"

	"secext"
)

type stressExt struct{}

func (stressExt) Init(lk *secext.Linkage) (map[string]secext.Handler, error) {
	return map[string]secext.Handler{}, nil
}

func TestWorldConcurrencyStress(t *testing.T) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:     []string{"others", "organization", "local"},
		Categories: []string{"dept-1", "dept-2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := w.Sys
	const workers = 6
	ctxs := make([]*secext.Context, workers)
	for i := range ctxs {
		name := fmt.Sprintf("w%d", i)
		class := "organization:{dept-1}"
		if i%2 == 1 {
			class = "organization:{dept-2}"
		}
		if _, err := sys.AddPrincipal(name, class); err != nil {
			t.Fatal(err)
		}
		ctxs[i], err = sys.NewContext(name)
		if err != nil {
			t.Fatal(err)
		}
	}
	tok, err := sys.Registry().IssueToken("w0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// File workers.
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := ctxs[i]
			for j := 0; j < 40; j++ {
				path := fmt.Sprintf("/fs/w%d-f%d", i, j)
				if _, err := sys.Call(ctx, "/svc/fs/create", secext.FileRequest{Path: path}); err != nil {
					t.Errorf("create: %v", err)
					return
				}
				if _, err := sys.Call(ctx, "/svc/fs/write",
					secext.FileRequest{Path: path, Data: []byte("x")}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if _, err := sys.Call(ctx, "/svc/fs/remove", secext.FileRequest{Path: path}); err != nil {
					t.Errorf("remove: %v", err)
					return
				}
			}
		}(i)
	}
	// Messaging workers: each opens its own endpoint and self-sends.
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := ctxs[i]
			ep := fmt.Sprintf("ep-%d", i)
			if _, err := sys.Call(ctx, "/svc/net/open", secext.NetOpenRequest{Name: ep}); err != nil {
				t.Errorf("open: %v", err)
				return
			}
			for j := 0; j < 40; j++ {
				if _, err := sys.Call(ctx, "/svc/net/send",
					secext.NetSendRequest{Name: ep, Data: []byte("m")}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
				if _, err := sys.Call(ctx, "/svc/net/recv", secext.NetRecvRequest{Name: ep}); err != nil {
					t.Errorf("recv: %v", err)
					return
				}
			}
		}(i)
	}
	// Journal workers.
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				if _, err := sys.Call(ctxs[i], "/svc/log/append", "event"); err != nil {
					t.Errorf("journal: %v", err)
					return
				}
			}
		}(i)
	}
	// Loader churn: load/unload extensions while everything else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 30; j++ {
			name := fmt.Sprintf("churn-%d", j)
			m := secext.Manifest{
				Name: name, Principal: "w0", Token: tok,
				Imports: []string{"/svc/fs/read"},
				Code:    func() secext.Extension { return stressExt{} },
			}
			if _, err := sys.Loader().Load(m); err != nil {
				t.Errorf("load: %v", err)
				return
			}
			if err := sys.Loader().Unload(name); err != nil {
				t.Errorf("unload: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// Nothing leaked: files and endpoints are gone, threads dir empty,
	// the journal holds every append, the loader is empty.
	root, err := sys.NewContext("w0")
	if err != nil {
		t.Fatal(err)
	}
	if ls, err := sys.Call(root, "/svc/fs/list", secext.FileRequest{Path: "/fs"}); err != nil || len(ls.([]string)) != 0 {
		t.Errorf("leaked files: %v, %v", ls, err)
	}
	if w.Journal.Len() != workers*40 {
		t.Errorf("journal entries = %d, want %d", w.Journal.Len(), workers*40)
	}
	if names := sys.Loader().Names(); len(names) != 0 {
		t.Errorf("leaked extensions: %v", names)
	}
	st := sys.Audit().Stats()
	if st.Denied != 0 {
		t.Errorf("unexpected denials during stress: %d", st.Denied)
	}
}
