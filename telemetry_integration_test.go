package secext_test

import (
	"strings"
	"testing"

	"secext"
)

// TestTelemetryEndToEnd drives a denial through a fully traced world
// and checks the three telemetry views agree with each other and with
// the audit log: the retained trace carries the per-stage spans and the
// guard that denied, its sequence number resolves to the matching audit
// event, the snapshot counts the denial against the same guard, and the
// Prometheus rendering exposes the series the scrape endpoint promises.
func TestTelemetryEndToEnd(t *testing.T) {
	w, err := secext.NewWorld(secext.WorldOptions{
		Levels:    []string{"others", "organization"},
		Telemetry: secext.TelemetryOptions{Mode: secext.TelemetryFull},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("alice", "organization"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.AddPrincipal("eve", "organization"); err != nil {
		t.Fatal(err)
	}
	actx, err := w.Sys.NewContext("alice")
	if err != nil {
		t.Fatal(err)
	}
	ectx, err := w.Sys.NewContext("eve")
	if err != nil {
		t.Fatal(err)
	}
	// Same clearance, so the denial below is purely discretionary.
	private := secext.NewACL(secext.Allow("alice", secext.Read|secext.Write))
	if err := w.FS.Create(actx, "/fs/secret", private, actx.Class()); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Sys.CheckData(ectx, "/fs/secret", secext.Read); err == nil {
		t.Fatal("eve reading alice's file should be denied")
	}

	var tr secext.DecisionTrace
	for _, cand := range w.Telemetry().Recent(0, true) {
		if cand.Subject == "eve" && cand.Path == "/fs/secret" {
			tr = cand
			break
		}
	}
	if tr.ID == 0 {
		t.Fatalf("no retained trace for eve's denial; have %v", w.Telemetry().Recent(0, false))
	}
	if tr.Allowed {
		t.Errorf("trace records ALLOW for a denial: %s", tr)
	}
	if tr.DeniedBy != "dac" {
		t.Errorf("trace DeniedBy = %q, want dac", tr.DeniedBy)
	}
	spans := make(map[string]bool)
	for _, s := range tr.Spans {
		spans[s.Name] = true
	}
	if !spans["resolve"] || !spans["guard:dac"] {
		t.Errorf("trace spans missing resolve/guard:dac: %s", tr)
	}

	// The trace's sequence number is the audit event's.
	if tr.Seq == 0 {
		t.Fatalf("trace has no audit correlation: %s", tr)
	}
	found := false
	for _, ev := range w.Sys.Audit().Select(secext.AuditQuery{Subject: "eve"}) {
		if ev.Seq == tr.Seq {
			found = true
			if ev.Allowed || ev.Path != "/fs/secret" {
				t.Errorf("audit event %d disagrees with trace: %+v", ev.Seq, ev)
			}
		}
	}
	if !found {
		t.Errorf("no audit event with seq %d", tr.Seq)
	}

	snap := w.Telemetry().Snapshot()
	var dacDenied uint64
	for _, g := range snap.Guards {
		if g.Name == "dac" {
			dacDenied = g.Denied
		}
	}
	if dacDenied == 0 {
		t.Errorf("snapshot counts no dac denials: %+v", snap.Guards)
	}

	var b strings.Builder
	if err := secext.WriteProm(&b, snap); err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"secext_mediations_total", "secext_decision_cache_hits_total",
		`secext_guard_eval_seconds_count{guard="dac"}`,
	} {
		if !strings.Contains(b.String(), series) {
			t.Errorf("prometheus output missing %s", series)
		}
	}
}
