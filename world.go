package secext

import (
	"secext/internal/acl"
	"secext/internal/core"
	"secext/internal/fsys"
	"secext/internal/names"
	"secext/internal/policy"
	"secext/internal/services/logsvc"
	"secext/internal/services/mbuf"
	"secext/internal/services/netsvc"
	"secext/internal/services/threadsvc"
	"secext/internal/telemetry"
)

// Service types re-exported for World users.
type (
	// ThreadManager is the protected thread service.
	ThreadManager = threadsvc.Manager
	// Thread is one simulated thread of control.
	Thread = threadsvc.Thread
	// ThreadSpawnRequest is the argument of /svc/thread/spawn.
	ThreadSpawnRequest = threadsvc.SpawnRequest
	// ThreadKillRequest is the argument of /svc/thread/kill.
	ThreadKillRequest = threadsvc.KillRequest
	// MbufPool is the buffer-pool service.
	MbufPool = mbuf.Pool
	// MbufBuffer is one pool buffer.
	MbufBuffer = mbuf.Buffer
	// MbufStats describes pool occupancy.
	MbufStats = mbuf.Stats
	// Journal is the append-only log service.
	Journal = logsvc.Journal
	// JournalEntry is one journal record.
	JournalEntry = logsvc.Entry
	// NetService is the protected message-passing service.
	NetService = netsvc.Net
	// NetMessage is one delivered, attributed datagram.
	NetMessage = netsvc.Message
	// NetOpenRequest is the argument of /svc/net/open.
	NetOpenRequest = netsvc.OpenRequest
	// NetSendRequest is the argument of /svc/net/send.
	NetSendRequest = netsvc.SendRequest
	// NetRecvRequest is the argument of /svc/net/recv.
	NetRecvRequest = netsvc.RecvRequest
	// NetCloseRequest is the argument of /svc/net/close.
	NetCloseRequest = netsvc.CloseRequest
)

// WorldOptions configure NewWorld.
type WorldOptions struct {
	// Levels are the trust levels, lowest first. Required.
	Levels []string
	// Categories are the compartment labels. Optional.
	Categories []string
	// JournalClassLabel labels the system journal; it defaults to the
	// highest level with no categories, so every subject can append and
	// only top-level subjects can read.
	JournalClassLabel string
	// MbufCount and MbufSize dimension the buffer pool (defaults 256 ×
	// 2048).
	MbufCount, MbufSize int
	// DisableAudit starts with the audit log off.
	DisableAudit bool
	// TrustLinkTime enables the SPIN-style linked-call fast path.
	TrustLinkTime bool
	// DisableDecisionCache turns off the mediation fast path (see
	// core.Options.DisableDecisionCache); for experiments.
	DisableDecisionCache bool
	// DecisionCacheSize overrides the decision cache's approximate
	// entry capacity (0 = default).
	DecisionCacheSize int
	// Guards are extra policy modules stacked after the built-in
	// discretionary and mandatory guards (see core.Options.Guards).
	Guards []Guard
	// Telemetry configures the observability subsystem (see
	// core.Options.Telemetry). The zero value enables metrics with
	// sampled traces; TelemetryOff disables it entirely.
	Telemetry telemetry.Options
	// PolicyText, if non-empty, is parsed as a policy document and
	// applied to the assembled world: its principals, groups, extra
	// nodes, and ACL grants land on top of the standard services. The
	// document's levels directive must name the same levels as Levels.
	PolicyText string
}

// World is a fully assembled extensible system: the reference monitor
// plus the standard substrate services mounted at their conventional
// paths —
//
//	/svc                 service domain
//	/svc/fs/*            general file-system interface (extendable)
//	/svc/thread/*        thread lifecycle services
//	/svc/mbuf/*          buffer-pool services
//	/svc/net/*           message-passing services
//	/svc/log/*           journal services
//	/svc/journal         the append-only journal object
//	/fs                  multilevel file tree
//	/threads             thread objects
//	/net                 message endpoints
//
// Examples and the benchmark harness build on a World; library users
// who want a different layout assemble their own from the pieces.
type World struct {
	Sys     *System
	FS      *fsys.FS
	Threads *threadsvc.Manager
	Mbuf    *mbuf.Pool
	Journal *logsvc.Journal
	Net     *netsvc.Net
}

// NewWorld builds the standard world.
func NewWorld(opts WorldOptions) (*World, error) {
	sys, err := core.NewSystem(core.Options{
		Levels:               opts.Levels,
		Categories:           opts.Categories,
		DisableAudit:         opts.DisableAudit,
		TrustLinkTime:        opts.TrustLinkTime,
		DisableDecisionCache: opts.DisableDecisionCache,
		DecisionCacheSize:    opts.DecisionCacheSize,
		Guards:               opts.Guards,
		Telemetry:            opts.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	lat := sys.Lattice()
	bot, err := lat.Bottom()
	if err != nil {
		return nil, err
	}

	listable := acl.New(acl.AllowEveryone(acl.List))
	svcACL := acl.New(acl.AllowEveryone(acl.Execute | acl.List))

	if _, err := sys.CreateNode(core.NodeSpec{
		Path: "/svc", Kind: names.KindDomain, ACL: listable, Class: bot,
	}); err != nil {
		return nil, err
	}

	// File service: a multilevel tree plus the general FS interface.
	fsACL := acl.New(acl.AllowEveryone(acl.List | acl.Write))
	fs, err := fsys.Mount(sys, "/fs", fsACL, bot)
	if err != nil {
		return nil, err
	}
	if _, err := fsys.RegisterServices(sys, fs, "/svc/fs", svcACL, bot); err != nil {
		return nil, err
	}

	// Thread service.
	threads, err := threadsvc.New(sys, "/threads", "/svc/thread", svcACL)
	if err != nil {
		return nil, err
	}

	// Message passing.
	net, err := netsvc.New(sys, "/net", "/svc/net", svcACL, netsvc.DefaultQueueDepth)
	if err != nil {
		return nil, err
	}

	// Buffer pool.
	count, size := opts.MbufCount, opts.MbufSize
	if count == 0 {
		count = 256
	}
	if size == 0 {
		size = 2048
	}
	pool, err := mbuf.NewPool(sys, "/svc/mbuf", count, size, svcACL)
	if err != nil {
		return nil, err
	}

	// Journal: everyone appends (the journal's class must dominate
	// every subject, so it defaults to the lattice top — highest level,
	// all categories), and only subjects dominating the top read it.
	journalClass, err := lat.Top()
	if err != nil {
		return nil, err
	}
	if opts.JournalClassLabel != "" {
		journalClass, err = lat.ParseClass(opts.JournalClassLabel)
		if err != nil {
			return nil, err
		}
	}
	jACL := acl.New(
		acl.AllowEveryone(acl.WriteAppend),
		acl.AllowGroup("auditors", acl.Read|acl.Write),
	)
	journal, err := logsvc.New(sys, "/svc/journal", "/svc/log", jACL, journalClass, svcACL)
	if err != nil {
		return nil, err
	}
	if err := sys.Registry().AddGroup("auditors"); err != nil {
		return nil, err
	}

	if opts.PolicyText != "" {
		p, err := policy.ParseString(opts.PolicyText)
		if err != nil {
			return nil, err
		}
		if err := p.Apply(sys); err != nil {
			return nil, err
		}
	}

	return &World{Sys: sys, FS: fs, Threads: threads, Mbuf: pool, Journal: journal, Net: net}, nil
}

// Telemetry returns the world's observability subsystem (nil when built
// with TelemetryOff; all methods are nil-safe).
func (w *World) Telemetry() *telemetry.Telemetry { return w.Sys.Telemetry() }
